"""The long-running prediction service: wiring and entry points.

Glues the serve stack together::

    telemetry source ──lines──> Ingestor ──submit──> ShardManager
         (TCP / stdin)                              │ bounded queues
                                                    ▼ fork()ed workers
                                       ShardPipeline per SKU
                                       (filter → PPEP → ledger → capping)
                                       + Checkpointer (period / SIGTERM)

Three front doors:

- ``mode="loopback"`` -- the self-contained demo and benchmark: a
  simulated fleet streams its telemetry through a real TCP socket into
  the real shard workers, honoring backpressure, for a fixed number of
  intervals.
- ``mode="listen"`` -- the production shape: serve the socket until
  SIGTERM/SIGINT, then drain, checkpoint, and exit.
- ``mode="stdin"`` -- pipe newline-JSON telemetry in, e.g.
  ``replayer | ppep-repro serve --stdin``.

On every exit path the workers snapshot their pipelines, so the next
start resumes with drift history, quarantine state, and budget
allocations intact.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.ppep import stable_seed
from repro.fleet.registry import ModelRegistry
from repro.fleet.simulator import FleetSimulator, make_fleet
from repro.hardware.microarch import FX8320_SPEC, PHENOM_II_SPEC
from repro.serve.ingest import Ingestor, ingest_lines_async
from repro.serve.manager import ShardManager, ShardSpec
from repro.serve.protocol import (
    ACCEPTED,
    DUPLICATE,
    RETRY,
    SHED,
    decode_line,
    telemetry_line,
)

__all__ = ["SKU_SPECS", "ServeConfig", "build_shards", "make_sources", "run_service"]

logger = logging.getLogger(__name__)

#: The SKU keys telemetry lines carry, mapped to their chip specs.
SKU_SPECS = {
    "fx8320": FX8320_SPEC,
    "phenom": PHENOM_II_SPEC,
}


@dataclass
class ServeConfig:
    """Everything the service needs to come up."""

    #: SKU shards to run (keys of :data:`SKU_SPECS`).
    skus: Sequence[str] = ("fx8320", "phenom")
    nodes_per_sku: int = 2
    #: Loopback mode: intervals streamed per node.
    intervals: int = 100
    #: Bounded shard-queue depth (backpressure threshold).
    queue_size: int = 64
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 64
    events_dir: Optional[str] = None
    budget_per_node_w: float = 90.0
    policy: str = "proportional"
    unhealthy_after: int = 3
    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound port is reported in the stats).
    port: int = 0
    base_seed: int = 20141213
    extra_args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [sku for sku in self.skus if sku not in SKU_SPECS]
        if unknown:
            raise ValueError(
                "unknown SKUs {}; choose from {}".format(
                    unknown, sorted(SKU_SPECS)
                )
            )
        if self.nodes_per_sku < 1:
            raise ValueError("nodes_per_sku must be >= 1")


def build_shards(
    registry: ModelRegistry, config: ServeConfig
) -> Tuple[List[ShardSpec], Dict[str, FleetSimulator]]:
    """One :class:`ShardSpec` per SKU, plus per-SKU simulated fleets.

    The fleets serve as the loopback telemetry source; node names are
    prefixed with the SKU (``fx8320-n00``) so a name alone routes a
    line to its shard.
    """
    shards: List[ShardSpec] = []
    fleets: Dict[str, FleetSimulator] = {}
    for sku in config.skus:
        spec = SKU_SPECS[sku]
        fleet = make_fleet(
            [spec] * config.nodes_per_sku,
            registry,
            base_seed=stable_seed(config.base_seed, "serve", sku),
        )
        for i, node in enumerate(fleet.nodes):
            node.name = "{}-n{:02d}".format(sku, i)
        shards.append(
            ShardSpec(
                sku=sku,
                spec=spec,
                ppep=registry.get(spec),
                node_names=[node.name for node in fleet.nodes],
                budget_w=config.budget_per_node_w * config.nodes_per_sku,
                policy=config.policy,
                unhealthy_after=config.unhealthy_after,
            )
        )
        fleets[sku] = fleet
    return shards, fleets


def make_sources(
    fleets: Dict[str, FleetSimulator], intervals: int
) -> Iterator[bytes]:
    """Interleaved wire lines from the simulated fleets.

    Every interval each fleet steps once and every node emits one
    ``telemetry`` line, so shards receive traffic concurrently -- the
    shape a real deployment produces.
    """
    for k in range(intervals):
        for sku, fleet in fleets.items():
            samples = fleet.step()
            for node, sample in zip(fleet.nodes, samples):
                yield telemetry_line(node.name, sku, k, sample)


async def stream_lines(
    host: str,
    port: int,
    lines: Iterator[bytes],
    stop_event: Optional[asyncio.Event] = None,
    max_redeliveries: int = 1000,
) -> dict:
    """Send lines over TCP, honoring per-line responses.

    A ``retry`` (or ``shed``) response backs off for the server's
    suggested delay and redelivers the same line -- the client half of
    the bounded-queue contract.  A ``duplicate`` counts as delivered:
    the server already holds that interval.  Returns delivery counters.
    (For reconnects, spooling, and exactly-once across transport faults,
    use :class:`repro.serve.client.ResilientClient` instead.)
    """
    reader, writer = await asyncio.open_connection(host, port)
    sent = accepted = retried = errors = 0
    try:
        for line in lines:
            if stop_event is not None and stop_event.is_set():
                break
            for _attempt in range(max_redeliveries):
                writer.write(line)
                await writer.drain()
                sent += 1
                payload = decode_line(await reader.readline())
                status = payload.get("status")
                if status in (ACCEPTED, DUPLICATE):
                    accepted += 1
                    break
                if status in (RETRY, SHED):
                    retried += 1
                    await asyncio.sleep(payload.get("retry_after_s", 0.05))
                    continue
                errors += 1
                logger.warning("server rejected line: %s", payload)
                break
            else:
                raise RuntimeError(
                    "line refused {} times; shard stuck".format(max_redeliveries)
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return {
        "sent": sent,
        "accepted": accepted,
        "retried": retried,
        "errors": errors,
    }


async def _run_loopback(
    manager: ShardManager, config: ServeConfig, fleets: Dict[str, FleetSimulator]
) -> dict:
    ingestor = Ingestor(manager, host=config.host, port=config.port)
    await ingestor.start()
    stop_event = asyncio.Event()
    _install_stop_handlers(stop_event)
    watchdog = asyncio.ensure_future(_watch_workers(manager, stop_event))
    try:
        client = await stream_lines(
            ingestor.host,
            ingestor.port,
            make_sources(fleets, config.intervals),
            stop_event=stop_event,
        )
    finally:
        stop_event.set()
        await watchdog
        await ingestor.stop()
    return {"client": client, "ingest": ingestor.stats.as_dict()}


async def _run_listen(manager: ShardManager, config: ServeConfig) -> dict:
    ingestor = Ingestor(manager, host=config.host, port=config.port)
    await ingestor.start()
    stop_event = asyncio.Event()
    _install_stop_handlers(stop_event)
    logger.info("serving telemetry on %s:%d", ingestor.host, ingestor.port)
    print(
        "listening on {}:{} ({} shards)".format(
            ingestor.host, ingestor.port, len(manager.shards)
        ),
        flush=True,
    )
    watchdog = asyncio.ensure_future(_watch_workers(manager, stop_event))
    await stop_event.wait()
    await watchdog
    await ingestor.stop()
    return {"ingest": ingestor.stats.as_dict()}


async def _run_stdin(manager: ShardManager, source) -> dict:
    """The stdin lifecycle: feed lines with the watchdog co-scheduled.

    ``ingest_lines_async`` waits with ``await asyncio.sleep`` on
    backpressure, so the watchdog keeps restarting dead workers and
    checking heartbeats while a full queue drains -- the property that
    makes the stdin path survive a worker crash mid-pipe.
    """
    stop_event = asyncio.Event()
    _install_stop_handlers(stop_event)
    watchdog = asyncio.ensure_future(_watch_workers(manager, stop_event))
    try:
        stats = await ingest_lines_async(manager, source)
    finally:
        stop_event.set()
        await watchdog
    return {"ingest": stats.as_dict()}


async def _watch_workers(
    manager: ShardManager, stop_event: asyncio.Event, period_s: float = 0.5
) -> None:
    """Supervision loop: restart dead workers, drain progress reports,
    and degrade shards whose heartbeats have stalled."""
    while not stop_event.is_set():
        manager.ensure_alive()
        manager.poll()
        manager.check_heartbeats()
        try:
            await asyncio.wait_for(stop_event.wait(), timeout=period_s)
        except asyncio.TimeoutError:
            continue


def _install_stop_handlers(stop_event: asyncio.Event) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(signum, lambda _s, _f: stop_event.set())


def run_service(
    registry: ModelRegistry,
    config: ServeConfig,
    mode: str = "loopback",
    stdin=None,
) -> dict:
    """Bring the service up, run one lifecycle, and drain it cleanly.

    Returns a report dict: per-shard processed/accepted/retried
    counters, checkpoint/restart counts, wall time, and throughput.
    Whatever the exit path -- intervals exhausted, SIGTERM, a broken
    source -- the workers checkpoint before the call returns.
    """
    if mode not in ("loopback", "listen", "stdin"):
        raise ValueError("unknown serve mode {!r}".format(mode))
    shards, fleets = build_shards(registry, config)
    manager = ShardManager(
        shards,
        queue_size=config.queue_size,
        checkpoint_dir=config.checkpoint_dir,
        checkpoint_every=config.checkpoint_every,
        events_dir=config.events_dir,
    )
    manager.start()
    started = time.perf_counter()
    front: dict = {}
    try:
        if mode == "stdin":
            source = stdin if stdin is not None else sys.stdin.buffer
            front = asyncio.run(_run_stdin(manager, source))
        elif mode == "listen":
            front = asyncio.run(_run_listen(manager, config))
        else:
            front = asyncio.run(_run_loopback(manager, config, fleets))
    finally:
        final = manager.stop()
    elapsed = time.perf_counter() - started
    report = dict(front)
    report.update(final)
    report["elapsed_s"] = elapsed
    report["intervals_per_s"] = (
        final["processed"] / elapsed if elapsed > 0 else 0.0
    )
    return report
