"""Per-SKU shard: the hardened online pipeline behind a queue.

A shard owns every node of one chip SKU.  It loads exactly one trained
model (via the :class:`~repro.fleet.registry.ModelRegistry` the manager
hands it) and runs the unchanged hardened pipeline per delivered
interval: ``TelemetryFilter -> HardenedPPEP -> PredictionLedger`` per
node, plus the cluster-capping layer (quarantine on bad-telemetry
streaks, demand/floor pricing through the batched predictor, budget
allocation, per-node one-step cappers) across the shard's nodes.

Two layers live here:

- :class:`ShardPipeline` -- the in-process engine.  Synchronous,
  deterministic, fully checkpointable via ``state_dict()`` /
  ``load_state_dict()``; tests drive it directly.
- :func:`shard_worker_main` -- the process entry point: drains a
  bounded queue of validated telemetry events into a pipeline,
  checkpoints on a period and on SIGTERM, and reports progress to the
  supervising :class:`~repro.serve.manager.ShardManager`.
"""

from __future__ import annotations

import logging
import os
import queue
import signal
import time
from typing import Dict, List, Optional

import numpy as np

from repro.dvfs.power_capping import ExternalBudget, PPEPPowerCapper
from repro.faults.filtering import FilterConfig, HardenedPPEP
from repro.fleet.cluster_cap import allocate_budget
from repro.hardware.platform import IntervalSample
from repro.obs.events import EventLog
from repro.obs.ledger import PredictionLedger
from repro.serve.checkpoint import Checkpointer
from repro.serve.protocol import sample_from_wire

__all__ = ["ShardPipeline", "shard_worker_main", "STOP"]

logger = logging.getLogger(__name__)

#: Queue sentinel that tells a worker to checkpoint and exit cleanly.
STOP = "__stop__"

#: Worker -> supervisor progress cadence, in processed intervals.
PROGRESS_EVERY = 32

#: Worker -> supervisor heartbeat cadence, seconds.  A worker that
#: misses the manager's ``heartbeat_timeout_s`` is considered stalled
#: (SIGSTOP, livelock) and its shard degrades to load-shedding.
HEARTBEAT_EVERY_S = 0.15


class ShardPipeline:
    """The hardened prediction pipeline for one SKU's nodes.

    Parameters
    ----------
    sku:
        Shard name (the SKU key telemetry lines carry).
    spec / ppep:
        The chip and its trained model -- one model for every node of
        the shard, exactly as :class:`~repro.fleet.registry.ModelRegistry`
        guarantees.
    node_names:
        The fixed node roster.  Budget allocation runs once per
        *round* -- when every roster node has delivered its next
        interval -- so the roster is part of the shard's configuration,
        not discovered from traffic.
    budget_w:
        Shard power budget split across nodes every round (watts).
    policy:
        Allocation policy (see :func:`repro.fleet.cluster_cap.allocate_budget`).
    unhealthy_after:
        Consecutive BAD intervals before a node is quarantined: pinned
        to the slowest VF decision and granted only its floor power.
    events / ledger_kwargs / filter_config / margin / bias_gain:
        Observability sink and pipeline tunables.
    """

    def __init__(
        self,
        sku: str,
        spec,
        ppep,
        node_names: List[str],
        budget_w: Optional[float] = None,
        policy: str = "proportional",
        unhealthy_after: int = 3,
        filter_config: Optional[FilterConfig] = None,
        events: Optional[EventLog] = None,
        ledger_kwargs: Optional[dict] = None,
        margin: float = 0.97,
        bias_gain: float = 0.25,
        batched: bool = True,
    ) -> None:
        if not node_names:
            raise ValueError("a shard needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ValueError("node names must be unique")
        if unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        self.sku = sku
        self.spec = spec
        self.ppep = ppep
        #: Run the per-node cappers on the cached struct-of-arrays
        #: pricing kernel (bit-identical decisions; the legacy
        #: ``batched=False`` path re-prices every trial assignment from
        #: scratch).  Nodes deliver intervals asynchronously, so the
        #: shard's cross-node batching stays at the allocation round;
        #: the per-interval kernel win is the cached pricer.
        self.batched = bool(batched)
        self.node_names = list(node_names)
        self.budget_w = (
            float(budget_w) if budget_w is not None else 90.0 * len(node_names)
        )
        self.policy = policy
        self.unhealthy_after = int(unhealthy_after)
        self.events = events
        self.ledger = PredictionLedger(events=events, **(ledger_kwargs or {}))
        self._budgets: Dict[str, ExternalBudget] = {}
        self._cappers: Dict[str, PPEPPowerCapper] = {}
        self._hardened: Dict[str, HardenedPPEP] = {}
        for name in self.node_names:
            budget = ExternalBudget(self.budget_w / len(self.node_names))
            self._budgets[name] = budget
            self._cappers[name] = PPEPPowerCapper(
                ppep,
                budget,
                margin=margin,
                bias_gain=bias_gain,
                use_pricer=self.batched,
            )
            self._hardened[name] = HardenedPPEP(
                ppep,
                config=filter_config,
                node=name,
                events=events,
                ledger=self.ledger,
            )
        self._bad_streak = {name: 0 for name in self.node_names}
        self._quarantined_since: Dict[str, Optional[int]] = {
            name: None for name in self.node_names
        }
        self._held: Dict[str, Optional[List[int]]] = {
            name: None for name in self.node_names
        }
        #: Cleaned samples of the in-flight allocation round.
        self._round: Dict[str, IntervalSample] = {}
        self._last_alloc = None
        self.processed = 0
        self.intervals: Dict[str, int] = {name: 0 for name in self.node_names}
        self.allocations = 0

    # -- per-interval processing --------------------------------------------

    def process(self, node: str, sample: IntervalSample) -> dict:
        """Run one delivered interval through the hardened pipeline.

        Returns a summary dict (quality verdict, power estimate, the VF
        decision the service would push to the node, health).
        """
        if node not in self._hardened:
            raise KeyError(
                "node {!r} is not on shard {!r}'s roster".format(node, self.sku)
            )
        interval = self.intervals[node]
        estimate, filtered = self._hardened[node].estimate_current(sample)
        self.intervals[node] = interval + 1
        self.processed += 1

        streak = 0 if filtered.actionable else self._bad_streak[node] + 1
        self._bad_streak[node] = streak
        healthy = streak < self.unhealthy_after
        self._observe_health(node, interval, healthy)

        # The capper always sees the cleaned sample so its bias
        # corrector and schedule step stay in lockstep with the stream,
        # even when its decision is overridden below.
        decision = [vf.index for vf in self._cappers[node].decide(filtered.sample)]
        if not healthy:
            decision = [self.spec.vf_table.slowest.index] * self.spec.num_cus
            self._held[node] = None
        elif not filtered.actionable:
            if self._held[node] is not None:
                decision = list(self._held[node])
        else:
            if (
                self.events is not None
                and self._held[node] is not None
                and decision != self._held[node]
            ):
                self.events.emit(
                    "vf_transition",
                    node=node,
                    interval=interval,
                    from_vf=list(self._held[node]),
                    to_vf=list(decision),
                )
            self._held[node] = list(decision)

        if node in self._round:
            # The node lapped a straggler: close the round with whoever
            # delivered (an absent node's stream is dead or lagging; its
            # budget share simply stays where the last round put it).
            self._allocate_round()
        self._round[node] = filtered.sample
        if len(self._round) == len(self.node_names):
            self._allocate_round()

        if self.events is not None:
            # The applied-decision record is the unit of the service's
            # exactly-once contract: under chaos the post-dedup decision
            # stream must be bit-identical to the chaos-free run, and
            # the flush-after-checkpoint discipline keeps this stream
            # duplicate-free across worker restarts.
            self.events.emit(
                "decision",
                node=node,
                interval=interval,
                sku=self.sku,
                vf_index=list(decision),
                delivery_index=self.processed - 1,
                quality=filtered.quality,
            )

        return {
            "node": node,
            "interval": interval,
            "quality": filtered.quality,
            "healthy": healthy,
            "estimate_w": float(estimate),
            "decision": decision,
        }

    def _observe_health(self, node: str, interval: int, healthy: bool) -> None:
        since = self._quarantined_since[node]
        if not healthy and since is None:
            self._quarantined_since[node] = interval
            if self.events is not None:
                self.events.emit(
                    "quarantine_enter",
                    node=node,
                    interval=interval,
                    bad_streak=self._bad_streak[node],
                )
        elif healthy and since is not None:
            self._quarantined_since[node] = None
            if self.events is not None:
                self.events.emit(
                    "quarantine_exit",
                    node=node,
                    interval=interval,
                    quarantined_intervals=interval - since,
                )

    def _allocate_round(self) -> None:
        """Split the shard budget across the round's nodes.

        Demand and floor come from one batched all-VF pricing pass over
        the round's cleaned samples (the same
        :class:`~repro.core.batch.BatchedVFPredictor` hot path the fleet
        simulator uses); unhealthy nodes are granted only their floor,
        and a ``cap_reallocation`` event is emitted whenever the
        (budget, healthy-set) signature changes.
        """
        names = [n for n in self.node_names if n in self._round]
        samples = [self._round[n] for n in names]
        self._round = {}
        batch = self.ppep.batched_predictor().predict_samples(samples)
        demand = np.asarray(batch.demand, dtype=float)
        floor = np.asarray(batch.floor, dtype=float)
        healthy = np.array(
            [
                self._bad_streak[n] < self.unhealthy_after
                for n in names
            ],
            dtype=bool,
        )
        if healthy.all():
            shares = allocate_budget(self.policy, self.budget_w, demand, floor)
        else:
            shares = np.zeros(len(names))
            shares[~healthy] = floor[~healthy]
            remaining = max(self.budget_w - float(floor[~healthy].sum()), 0.0)
            if healthy.any():
                shares[healthy] = allocate_budget(
                    self.policy, remaining, demand[healthy], floor[healthy]
                )
        for name, share in zip(names, shares):
            self._budgets[name].set(float(share))
        self.allocations += 1
        signature = (
            self.budget_w,
            tuple(bool(h) for h in healthy),
            tuple(names),
        )
        if signature != self._last_alloc:
            self._last_alloc = signature
            if self.events is not None:
                self.events.emit(
                    "cap_reallocation",
                    node="shard-{}".format(self.sku),
                    interval=max(self.intervals.values()) - 1,
                    budget_w=float(self.budget_w),
                    healthy_nodes=int(healthy.sum()),
                    total_nodes=len(self.node_names),
                )

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """The shard's whole resumable state.

        The in-flight allocation round is deliberately dropped: its
        samples are mid-barrier, and losing them costs at most one
        allocation -- well inside the one-checkpoint-period restart
        guarantee.
        """
        return {
            "sku": self.sku,
            "nodes": list(self.node_names),
            "processed": self.processed,
            "allocations": self.allocations,
            "intervals": dict(self.intervals),
            "bad_streak": dict(self._bad_streak),
            "quarantined_since": dict(self._quarantined_since),
            "held": {
                name: None if held is None else list(held)
                for name, held in self._held.items()
            },
            "last_alloc": (
                None
                if self._last_alloc is None
                else [
                    self._last_alloc[0],
                    list(self._last_alloc[1]),
                    list(self._last_alloc[2]),
                ]
            ),
            "budgets": {
                name: budget.state_dict()
                for name, budget in self._budgets.items()
            },
            "cappers": {
                name: capper.state_dict()
                for name, capper in self._cappers.items()
            },
            "hardened": {
                name: hardened.state_dict()
                for name, hardened in self._hardened.items()
            },
            "ledger": self.ledger.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        if list(state["nodes"]) != self.node_names:
            raise ValueError(
                "checkpoint roster {} does not match shard roster {}".format(
                    state["nodes"], self.node_names
                )
            )
        self.processed = int(state["processed"])
        self.allocations = int(state["allocations"])
        self.intervals = {
            name: int(v) for name, v in state["intervals"].items()
        }
        self._bad_streak = {
            name: int(v) for name, v in state["bad_streak"].items()
        }
        self._quarantined_since = {
            name: None if v is None else int(v)
            for name, v in state["quarantined_since"].items()
        }
        self._held = {
            name: None if held is None else [int(i) for i in held]
            for name, held in state["held"].items()
        }
        self._last_alloc = (
            None
            if state["last_alloc"] is None
            else (
                float(state["last_alloc"][0]),
                tuple(bool(h) for h in state["last_alloc"][1]),
                tuple(str(n) for n in state["last_alloc"][2]),
            )
        )
        for name, budget_state in state["budgets"].items():
            self._budgets[name].load_state_dict(budget_state)
        for name, capper_state in state["cappers"].items():
            self._cappers[name].load_state_dict(capper_state)
        for name, hardened_state in state["hardened"].items():
            self._hardened[name].load_state_dict(hardened_state)
        self.ledger.load_state_dict(state["ledger"])
        self._round = {}

    @property
    def mid_round(self) -> bool:
        """Whether an allocation round is currently mid-barrier.

        Checkpoints must wait for round boundaries: ``state_dict``
        drops the in-flight round, so a snapshot taken here would make
        a crash-restore close its next round with samples from mixed
        intervals and diverge from the uninterrupted decision stream.
        """
        return bool(self._round)

    def held_decisions(self) -> Dict[str, Optional[List[int]]]:
        """Per-node last-safe VF decision (``None`` before the first).

        The manager mirrors this map so that while the shard is
        degraded (worker re-forking, SIGSTOPped) it can answer ``shed``
        responses with the node's held decision -- GuardedController
        semantics lifted to the service level.
        """
        return {
            name: None if held is None else list(held)
            for name, held in self._held.items()
        }

    def stats(self) -> dict:
        """A compact progress snapshot for the supervisor."""
        return {
            "processed": self.processed,
            "allocations": self.allocations,
            "quarantined": sum(
                1 for since in self._quarantined_since.values() if since is not None
            ),
            "drift_flags": len(self.ledger.drift_flags),
        }


def shard_worker_main(config: dict, in_queue, out_queue) -> None:
    """Worker-process entry point: queue -> pipeline -> checkpoints.

    ``config`` carries the pipeline construction arguments (the trained
    model arrives through the fork, so restarts never retrain).  The
    worker resumes from its checkpoint when one exists, processes
    validated telemetry events until the :data:`STOP` sentinel (or
    SIGTERM), snapshots every ``checkpoint_every`` intervals and on
    every *round-aligned* exit (a mid-round exit keeps the last aligned
    checkpoint authoritative -- see ``_snapshot``), and reports
    progress on ``out_queue``.

    The shard's JSONL event stream is flushed *after* each successful
    checkpoint (never in between): the on-disk event file therefore
    never runs ahead of the on-disk state, so a restart cannot re-emit
    an event the file already holds -- the
    no-duplicate-``cap_reallocation`` guarantee, extended to the
    ``decision`` stream.

    Beyond the pipeline counters, the worker maintains a **delivered**
    counter -- every item popped from the queue, error paths included --
    which is persisted inside the checkpoint.  That counter is the
    exactly-once watermark: the manager's in-flight ledger redelivers
    precisely the items at or past the last durable ``delivered`` after
    a crash, so no accepted interval is ever lost and (state restore
    being bit-identical) none is ever applied twice.  Heartbeats carry
    the live watermarks, the per-node held decisions, and the worker's
    fork epoch so the manager can ignore messages from a dead
    incarnation.
    """
    events_path = config.get("events_path")
    events = None
    if events_path is not None:
        # Flush discipline is tied to checkpoints (see above): the
        # huge flush_every disables the log's own cadence.
        events = EventLog(events_path, flush_every=10**9)
    pipeline = ShardPipeline(
        sku=config["sku"],
        spec=config["spec"],
        ppep=config["ppep"],
        node_names=config["node_names"],
        budget_w=config.get("budget_w"),
        policy=config.get("policy", "proportional"),
        unhealthy_after=config.get("unhealthy_after", 3),
        filter_config=config.get("filter_config"),
        events=events,
        ledger_kwargs=config.get("ledger_kwargs"),
        batched=config.get("batched", True),
    )
    epoch = int(config.get("epoch", 0))
    delivered = 0
    checkpointed = 0
    last_save_t = time.monotonic()

    def _state() -> dict:
        state = pipeline.state_dict()
        state["delivered"] = delivered
        return state

    checkpointer = None
    checkpoint_path = config.get("checkpoint_path")
    if checkpoint_path is not None:
        checkpointer = Checkpointer(
            checkpoint_path,
            _state,
            every_intervals=config.get("checkpoint_every", 64),
            chaos=config.get("disk_chaos"),
        )
        state = checkpointer.load()
        if state is not None:
            pipeline.load_state_dict(state)
            delivered = int(state.get("delivered", pipeline.processed))
            checkpointed = delivered
            logger.info(
                "shard %s resumed from %s at %d delivered items",
                pipeline.sku, checkpoint_path, delivered,
            )

    errors = 0

    def _report_stats() -> dict:
        stats = pipeline.stats()
        stats["epoch"] = epoch
        stats["errors"] = errors
        stats["delivered"] = delivered
        stats["checkpointed_delivered"] = checkpointed
        stats["held"] = pipeline.held_decisions()
        stats["checkpoints"] = (
            checkpointer.saves if checkpointer is not None else 0
        )
        stats["checkpoint_failures"] = (
            checkpointer.failures if checkpointer is not None else 0
        )
        stats["since_checkpoint_s"] = time.monotonic() - last_save_t
        return stats

    stopping = {"now": False}

    def _on_sigterm(_signum, _frame):
        stopping["now"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)

    def _snapshot() -> None:
        nonlocal checkpointed, last_save_t
        if checkpointer is not None and checkpointer.save():
            checkpointed = delivered
            last_save_t = time.monotonic()

    since_progress = 0
    last_heartbeat_t = 0.0
    try:
        while not stopping["now"]:
            now = time.monotonic()
            if now - last_heartbeat_t >= HEARTBEAT_EVERY_S:
                last_heartbeat_t = now
                out_queue.put(("heartbeat", pipeline.sku, _report_stats()))
            try:
                item = in_queue.get(timeout=0.1)
            except queue.Empty:
                # Idle: push whatever progress the supervisor has not
                # seen yet, so short bursts (< PROGRESS_EVERY) still
                # become visible once the stream pauses.
                if since_progress:
                    since_progress = 0
                    out_queue.put(("progress", pipeline.sku, _report_stats()))
                continue
            if item == STOP:
                break
            try:
                sample = sample_from_wire(item["sample"], pipeline.spec)
                pipeline.process(item["node"], sample)
            except Exception:
                # One bad interval must not take the shard down; it is
                # counted and the stream continues.
                errors += 1
                logger.exception(
                    "shard %s failed to process an interval", pipeline.sku
                )
            # Error paths count too: the watermark tracks queue items
            # consumed, and a poison item must not be redelivered.
            delivered += 1
            if checkpointer is not None and checkpointer.tick(
                aligned=not pipeline.mid_round
            ):
                checkpointed = delivered
                last_save_t = time.monotonic()
                if events is not None:
                    events.flush()
            since_progress += 1
            if since_progress >= PROGRESS_EVERY:
                since_progress = 0
                out_queue.put(("progress", pipeline.sku, _report_stats()))
    finally:
        if checkpointer is not None and pipeline.mid_round:
            # The mid-round alignment veto applies to the exit snapshot
            # exactly as to the periodic tick: ``state_dict`` drops the
            # in-flight allocation round, so a snapshot taken
            # mid-barrier (SIGTERM from the manager's stop timeout, an
            # operational SIGTERM mid-round) would advance the
            # ``delivered`` watermark past items whose round state it
            # cannot carry -- a restart would neither redeliver them
            # nor close their round, silently diverging from the
            # uninterrupted decision stream.  The last *aligned*
            # checkpoint stays authoritative instead, and the manager's
            # in-flight ledger redelivers the tail for bit-identical
            # reprocessing -- which is also why the event tail is
            # aborted, not flushed: the redelivery re-emits it, and the
            # file must not run ahead of the durable state.
            logger.info(
                "shard %s exiting mid-round: final snapshot skipped, "
                "last aligned checkpoint stays authoritative",
                pipeline.sku,
            )
            if events is not None:
                events.abort()
        else:
            # Round-aligned exit (or no checkpointing at all): snapshot
            # and persist the full event history.  Even when the save
            # itself fails (disk fault), the flushed events only record
            # decisions that really were applied; losing them would be
            # worse than the stale-watermark window the failure already
            # logged.
            _snapshot()
            if events is not None:
                events.close()
        out_queue.put(("stopped", pipeline.sku, _report_stats()))
