"""Synthetic benchmark suites.

The paper evaluates on 152 benchmark combinations from SPEC CPU2006,
PARSEC, and the NAS Parallel Benchmarks.  Those suites (and the real
machine to run them) are unavailable here, so this subpackage provides
phase-structured synthetic workloads spanning the same behavioural axes:
CPU-bound to memory-bound, steady to rapidly phase-changing, scalar to
FP-heavy.

- :mod:`repro.workloads.phases` -- the phase/workload data model;
- :mod:`repro.workloads.synthetic` -- parameterised generators;
- :mod:`repro.workloads.suites` -- the 152-combination roster mirroring
  the paper's structure (61 SPEC multi-programmed combos, 51 PARSEC runs,
  40 NPB runs);
- :mod:`repro.workloads.microbench` -- ``bench_A``, the L1-resident
  microbenchmark used for the power-gating study (Figure 4).
"""

from repro.workloads.phases import WorkloadPhase, Workload
from repro.workloads.synthetic import (
    make_cpu_bound,
    make_memory_bound,
    make_mixed,
    make_phased,
)
from repro.workloads.microbench import bench_a
from repro.workloads.suites import (
    Suite,
    BenchmarkCombination,
    build_roster,
    single_threaded_programs,
)

__all__ = [
    "WorkloadPhase",
    "Workload",
    "make_cpu_bound",
    "make_memory_bound",
    "make_mixed",
    "make_phased",
    "bench_a",
    "Suite",
    "BenchmarkCombination",
    "build_roster",
    "single_threaded_programs",
]
