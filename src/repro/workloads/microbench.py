"""The ``bench_A`` microbenchmark (Section IV-D).

To isolate per-CU idle power from NB idle power, the paper wrote a
microbenchmark with three properties: an L1-resident data set (so it
never touches the north bridge), a perfectly steady phase (so its power
is constant), and identical per-instance behaviour when replicated
across CUs.  Sweeping the number of busy CUs with power gating on and
off (Figure 4) then exposes ``P_idle(CU)``, ``P_idle(NB)`` and
``P_idle(Base)`` as bar gaps.
"""

from __future__ import annotations

from repro.workloads.phases import Workload, WorkloadPhase

__all__ = ["bench_a"]


def bench_a(total_instructions: float = None) -> Workload:
    """The L1-resident, NB-quiet, single-phase microbenchmark.

    ``mem_ns`` and ``l2_miss_per_inst`` are exactly zero: the working set
    fits in L1, so the NB sees no dynamic traffic from this workload and
    its CPI does not depend on memory at all.
    """
    phase = WorkloadPhase(
        name="bench_A",
        instructions=1.0e9,
        ccpi=0.9,
        mem_ns=0.0,
        uops_per_inst=1.25,
        fpu_per_inst=0.10,
        ic_fetch_per_inst=0.25,
        dc_access_per_inst=0.40,
        l2_request_per_inst=0.0,
        branch_per_inst=0.10,
        mispredict_per_inst=0.001,
        l2_miss_per_inst=0.0,
        l3_miss_ratio=0.0,
        retire_cpi=0.30,
        hidden_per_inst=0.01,
    )
    return Workload(
        "bench_A", [phase], total_instructions=total_instructions, suite="micro"
    )
