"""Workload phase model.

A workload is a sequence of *phases*.  Within a phase the program's
per-instruction behaviour is stationary: the rates of the Table I core
events per retired instruction, the core CPI component, the memory time
per instruction, and the misprediction rate are all constants.  Phase
boundaries are expressed in retired instructions, so phase positions are
frequency-independent -- the same program point is reached after the same
instruction count at any VF state, which is exactly the property the
paper's Observations 1 and 2 rely on.

The split between ``ccpi`` (core cycles per instruction, VF-invariant in
cycles) and ``mem_ns`` (memory time per instruction, VF-invariant in
wall-clock time) implements the leading-loads decomposition of Section
III: at core frequency ``f`` (GHz),

    CPI(f) = ccpi + mem_ns * f        (before NB contention)

so memory CPI scales proportionally with frequency while core CPI stays
fixed, matching Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence, Tuple

__all__ = ["WorkloadPhase", "Workload"]


@dataclass(frozen=True)
class WorkloadPhase:
    """Stationary per-instruction behaviour of a program region.

    Event rates are *per retired instruction*; ``mem_ns`` is nanoseconds
    of leading-load (exposed) memory time per instruction at an
    uncontended north bridge running at its stock frequency.
    """

    name: str
    #: Retired instructions in this phase.
    instructions: float
    #: Core cycles per instruction (frequency-invariant).
    ccpi: float
    #: Exposed memory time per instruction, nanoseconds (uncontended).
    mem_ns: float
    #: Retired micro-ops per instruction (E1 rate).
    uops_per_inst: float = 1.3
    #: FPU pipe assignments per instruction (E2 rate).
    fpu_per_inst: float = 0.1
    #: Instruction-cache fetches per instruction (E3 rate).
    ic_fetch_per_inst: float = 0.28
    #: Data-cache accesses per instruction (E4 rate).
    dc_access_per_inst: float = 0.45
    #: L2 requests per instruction (E5 rate).
    l2_request_per_inst: float = 0.03
    #: Retired branches per instruction (E6 rate).
    branch_per_inst: float = 0.16
    #: Mispredicted branches per instruction (E7 rate).
    mispredict_per_inst: float = 0.004
    #: L2 misses (= L3 accesses) per instruction (E8 rate).
    l2_miss_per_inst: float = 0.002
    #: Fraction of L2 misses that also miss L3 and go to DRAM.
    l3_miss_ratio: float = 0.5
    #: Reciprocal effective retire width, cycles per instruction spent
    #: retiring.  Program-dependent (the paper notes real programs do not
    #: retire a full issue width every retiring cycle).
    retire_cpi: float = 0.30
    #: Unmodelled activity events per instruction (prefetch, TLB, ...).
    hidden_per_inst: float = 0.08
    #: Data-dependent switching-activity factor on per-event energy.
    #: Real circuits burn more or less energy per event depending on
    #: operand toggle rates, which no performance counter observes; a
    #: fitted per-event weight can only capture the average.
    toggle_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("phase must retire a positive instruction count")
        if self.ccpi <= 0:
            raise ValueError("ccpi must be positive")
        if self.mem_ns < 0:
            raise ValueError("mem_ns cannot be negative")
        if self.retire_cpi <= 0:
            raise ValueError("retire_cpi must be positive")
        if not 0.0 <= self.l3_miss_ratio <= 1.0:
            raise ValueError("l3_miss_ratio must lie in [0, 1]")
        if self.mispredict_per_inst > self.branch_per_inst:
            raise ValueError("cannot mispredict more branches than retired")
        if self.toggle_factor <= 0:
            raise ValueError("toggle_factor must be positive")

    # -- derived behaviour -------------------------------------------------

    def cpi_at(self, frequency_ghz: float, contention: float = 1.0) -> float:
        """Ground-truth CPI at ``frequency_ghz`` with a north-bridge
        latency multiplier ``contention`` (>= 1)."""
        return self.ccpi + self.mem_ns * contention * frequency_ghz

    def dram_accesses_per_inst(self) -> float:
        """DRAM (L3-miss) accesses per instruction."""
        return self.l2_miss_per_inst * self.l3_miss_ratio

    def bytes_per_inst(self, line_size: int = 64) -> float:
        """DRAM traffic per instruction, bytes."""
        return self.dram_accesses_per_inst() * line_size

    def memory_boundness(self, frequency_ghz: float) -> float:
        """Fraction of execution time exposed to memory at ``frequency_ghz``.

        0 for a purely CPU-bound phase, approaching 1 when memory time
        dominates.  A convenient scalar for classifying workloads.
        """
        cpi = self.cpi_at(frequency_ghz)
        return (self.mem_ns * frequency_ghz) / cpi if cpi > 0 else 0.0

    def scaled(self, instruction_factor: float) -> "WorkloadPhase":
        """A copy with the instruction budget scaled by ``factor``."""
        if instruction_factor <= 0:
            raise ValueError("instruction_factor must be positive")
        return replace(self, instructions=self.instructions * instruction_factor)


class Workload:
    """A named sequence of phases, optionally looped.

    ``total_instructions`` bounds the run; when the phase list is shorter
    it loops.  When ``total_instructions`` is ``None`` the workload runs
    forever (useful for steady-state experiments such as Figure 4).
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[WorkloadPhase],
        total_instructions: float = None,
        suite: str = "synthetic",
    ) -> None:
        if not phases:
            raise ValueError("a workload needs at least one phase")
        self.name = name
        self.suite = suite
        self.phases: Tuple[WorkloadPhase, ...] = tuple(phases)
        if total_instructions is not None and total_instructions <= 0:
            raise ValueError("total_instructions must be positive")
        self.total_instructions = total_instructions

    @property
    def loop_instructions(self) -> float:
        """Instructions in one pass over the phase list."""
        return sum(p.instructions for p in self.phases)

    def phase_at(self, instructions_done: float) -> WorkloadPhase:
        """The phase active after ``instructions_done`` retired
        instructions (looping past the end of the phase list)."""
        if instructions_done < 0:
            raise ValueError("instructions_done cannot be negative")
        offset = instructions_done % self.loop_instructions
        for phase in self.phases:
            if offset < phase.instructions:
                return phase
            offset -= phase.instructions
        return self.phases[-1]

    def iter_phases(self) -> Iterator[WorkloadPhase]:
        """Iterate phases once, in order."""
        return iter(self.phases)

    def is_finished(self, instructions_done: float) -> bool:
        """Whether the workload's instruction budget is exhausted."""
        if self.total_instructions is None:
            return False
        return instructions_done >= self.total_instructions

    def average_mem_ns(self) -> float:
        """Instruction-weighted mean memory time per instruction."""
        total = self.loop_instructions
        return sum(p.mem_ns * p.instructions for p in self.phases) / total

    def average_ccpi(self) -> float:
        """Instruction-weighted mean core CPI."""
        total = self.loop_instructions
        return sum(p.ccpi * p.instructions for p in self.phases) / total

    def memory_boundness(self, frequency_ghz: float) -> float:
        """Instruction-weighted memory-boundness at ``frequency_ghz``."""
        total = self.loop_instructions
        return (
            sum(
                p.memory_boundness(frequency_ghz) * p.instructions
                for p in self.phases
            )
            / total
        )

    def with_budget(self, total_instructions: float) -> "Workload":
        """A copy with a different total instruction budget."""
        return Workload(self.name, self.phases, total_instructions, self.suite)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = (
            "inf"
            if self.total_instructions is None
            else "{:.3g}".format(self.total_instructions)
        )
        return "Workload({!r}, {} phases, budget={})".format(
            self.name, len(self.phases), budget
        )
