"""The 152-benchmark-combination roster.

Section II/IV-B: the paper evaluates on 152 combinations -- 61 SPEC
CPU2006 multi-programmed combos (29 single, 15 double, 10 triple, 7
quad), 51 PARSEC multi-threaded runs, and 40 NPB multi-threaded runs.
This module reproduces that structure exactly, with each named program
replaced by its synthetic analog (see :mod:`repro.workloads.synthetic`).

The SPEC combination lists are transcribed from the x-axis of the
paper's Figure 6.  PARSEC covers 13 programs at 1/2/4/8 threads (52,
minus one run to match the paper's 51); NPB covers 10 kernels at
1/2/4/8 threads (40).  Programs known for rapid phase changes -- dedup,
NPB-DC, NPB-IS -- get high phase volatility, reproducing the paper's
counter-multiplexing outliers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.workloads.phases import Workload
from repro.workloads.synthetic import ProgramProfile, make_program

__all__ = [
    "Suite",
    "BenchmarkCombination",
    "spec_program",
    "parsec_program",
    "npb_program",
    "spec_combinations",
    "parsec_runs",
    "npb_runs",
    "build_roster",
    "single_threaded_programs",
    "SPEC_PROGRAMS",
    "PARSEC_PROGRAMS",
    "NPB_PROGRAMS",
]


class Suite(enum.Enum):
    """Benchmark suite, with the paper's three-letter figure labels."""

    SPEC = "SPE"
    PARSEC = "PAR"
    NPB = "NPB"

    @property
    def label(self) -> str:
        return self.value


# name -> (memory_intensity, fp_intensity, branchiness, ilp, volatility)
_SPEC_AXES: Dict[str, Tuple[float, float, float, float, float]] = {
    "400.perlbench": (0.15, 0.05, 0.80, 0.50, 0.30),
    "401.bzip2": (0.35, 0.05, 0.65, 0.50, 0.40),
    "403.gcc": (0.45, 0.05, 0.75, 0.45, 0.50),
    "429.mcf": (0.95, 0.05, 0.50, 0.30, 0.30),
    "445.gobmk": (0.10, 0.05, 0.85, 0.45, 0.30),
    "456.hmmer": (0.08, 0.10, 0.30, 0.70, 0.10),
    "458.sjeng": (0.08, 0.05, 0.80, 0.50, 0.15),
    "462.libquantum": (0.90, 0.20, 0.25, 0.60, 0.10),
    "464.h264ref": (0.15, 0.25, 0.50, 0.60, 0.30),
    "471.omnetpp": (0.75, 0.05, 0.65, 0.35, 0.30),
    "473.astar": (0.60, 0.05, 0.60, 0.40, 0.30),
    "483.xalancbmk": (0.55, 0.05, 0.70, 0.40, 0.40),
    "410.bwaves": (0.70, 0.75, 0.10, 0.60, 0.10),
    "416.gamess": (0.05, 0.80, 0.25, 0.60, 0.15),
    "433.milc": (0.85, 0.50, 0.15, 0.50, 0.15),
    "434.zeusmp": (0.55, 0.70, 0.15, 0.55, 0.20),
    "435.gromacs": (0.15, 0.75, 0.20, 0.60, 0.10),
    "436.cactusADM": (0.65, 0.80, 0.08, 0.55, 0.10),
    "437.leslie3d": (0.75, 0.70, 0.10, 0.55, 0.10),
    "444.namd": (0.08, 0.85, 0.15, 0.70, 0.08),
    "447.dealII": (0.35, 0.60, 0.40, 0.55, 0.25),
    "450.soplex": (0.70, 0.45, 0.45, 0.40, 0.30),
    "453.povray": (0.05, 0.60, 0.55, 0.60, 0.20),
    "454.calculix": (0.20, 0.75, 0.25, 0.60, 0.20),
    "459.GemsFDTD": (0.80, 0.65, 0.10, 0.50, 0.15),
    "465.tonto": (0.30, 0.70, 0.35, 0.55, 0.30),
    "470.lbm": (0.90, 0.60, 0.05, 0.60, 0.05),
    "481.wrf": (0.45, 0.65, 0.30, 0.55, 0.35),
    "482.sphinx3": (0.50, 0.55, 0.35, 0.50, 0.30),
}

_PARSEC_AXES: Dict[str, Tuple[float, float, float, float, float]] = {
    "blackscholes": (0.08, 0.70, 0.15, 0.65, 0.08),
    "bodytrack": (0.30, 0.45, 0.45, 0.55, 0.35),
    "canneal": (0.85, 0.10, 0.55, 0.35, 0.25),
    "dedup": (0.55, 0.05, 0.60, 0.45, 0.95),
    "facesim": (0.45, 0.70, 0.20, 0.55, 0.25),
    "ferret": (0.40, 0.40, 0.45, 0.50, 0.40),
    "fluidanimate": (0.50, 0.65, 0.20, 0.55, 0.20),
    "freqmine": (0.45, 0.10, 0.60, 0.45, 0.35),
    "raytrace": (0.25, 0.60, 0.40, 0.55, 0.20),
    "streamcluster": (0.80, 0.40, 0.15, 0.55, 0.15),
    "swaptions": (0.05, 0.65, 0.30, 0.65, 0.10),
    "vips": (0.35, 0.45, 0.40, 0.55, 0.35),
    "x264": (0.20, 0.30, 0.55, 0.55, 0.40),
}

_NPB_AXES: Dict[str, Tuple[float, float, float, float, float]] = {
    "BT": (0.45, 0.75, 0.10, 0.60, 0.15),
    "CG": (0.85, 0.45, 0.15, 0.45, 0.15),
    "DC": (0.70, 0.05, 0.55, 0.40, 0.95),
    "EP": (0.03, 0.70, 0.25, 0.70, 0.05),
    "FT": (0.70, 0.60, 0.10, 0.60, 0.20),
    "IS": (0.75, 0.05, 0.40, 0.50, 0.95),
    "LU": (0.50, 0.70, 0.12, 0.58, 0.15),
    "MG": (0.75, 0.55, 0.10, 0.55, 0.20),
    "SP": (0.55, 0.70, 0.10, 0.58, 0.15),
    "UA": (0.45, 0.55, 0.30, 0.50, 0.40),
}

SPEC_PROGRAMS: Sequence[str] = tuple(_SPEC_AXES)
PARSEC_PROGRAMS: Sequence[str] = tuple(_PARSEC_AXES)
NPB_PROGRAMS: Sequence[str] = tuple(_NPB_AXES)

# SPEC combination lists transcribed from the x-axis of Figure 6 (the
# numeric prefixes identify the programs).
_SPEC_DOUBLES = [
    ("400", "401"), ("403", "429"), ("445", "456"), ("458", "462"),
    ("464", "471"), ("473", "483"), ("410", "416"), ("433", "434"),
    ("435", "436"), ("437", "444"), ("447", "450"), ("453", "454"),
    ("459", "465"), ("470", "481"), ("482", "429"),
]
_SPEC_TRIPLES = [
    ("400", "401", "403"), ("429", "445", "456"), ("458", "462", "464"),
    ("471", "473", "483"), ("410", "416", "433"), ("434", "435", "436"),
    ("437", "444", "447"), ("450", "453", "454"), ("459", "465", "470"),
    ("481", "482", "429"),
]
_SPEC_QUADS = [
    ("400", "401", "403", "429"), ("445", "456", "458", "462"),
    ("464", "471", "473", "483"), ("410", "416", "433", "434"),
    ("435", "436", "437", "444"), ("447", "450", "453", "454"),
    ("459", "465", "470", "481"),
]


def _axes_to_profile(
    name: str, axes: Tuple[float, float, float, float, float]
) -> ProgramProfile:
    mem, fp, br, ilp, vol = axes
    num_phases = 10 if vol > 0.8 else (8 if vol > 0.3 else 5)
    return ProgramProfile(
        name=name,
        memory_intensity=mem,
        fp_intensity=fp,
        branchiness=br,
        ilp=ilp,
        phase_volatility=vol,
        num_phases=num_phases,
    )


def spec_program(name: str) -> Workload:
    """The synthetic analog of a SPEC CPU2006 program, by full name
    (``"433.milc"``) or numeric prefix (``"433"``).

    Both spellings return the same cached object.
    """
    return _spec_program_cached(_resolve_spec_name(name))


@lru_cache(maxsize=None)
def _spec_program_cached(full: str) -> Workload:
    return make_program(_axes_to_profile(full, _SPEC_AXES[full]), suite="SPEC")


@lru_cache(maxsize=None)
def parsec_program(name: str) -> Workload:
    """The synthetic analog of a PARSEC program."""
    if name not in _PARSEC_AXES:
        raise KeyError("unknown PARSEC program {!r}".format(name))
    return make_program(_axes_to_profile(name, _PARSEC_AXES[name]), suite="PARSEC")


@lru_cache(maxsize=None)
def npb_program(name: str) -> Workload:
    """The synthetic analog of an NPB kernel."""
    if name not in _NPB_AXES:
        raise KeyError("unknown NPB kernel {!r}".format(name))
    return make_program(_axes_to_profile(name, _NPB_AXES[name]), suite="NPB")


def _resolve_spec_name(name: str) -> str:
    if name in _SPEC_AXES:
        return name
    for full in _SPEC_AXES:
        if full.split(".")[0] == name:
            return full
    raise KeyError("unknown SPEC program {!r}".format(name))


@dataclass(frozen=True)
class BenchmarkCombination:
    """One of the 152 benchmark combinations.

    ``kind`` distinguishes multi-programmed combos (distinct programs,
    one per compute unit, the SPEC style) from multi-threaded runs
    (one program on several cores, the PARSEC/NPB style).
    """

    name: str
    suite: Suite
    workloads: Tuple[Workload, ...]
    kind: str  # "multiprogram" | "multithread"

    def __post_init__(self) -> None:
        if self.kind not in ("multiprogram", "multithread"):
            raise ValueError("unknown combination kind {!r}".format(self.kind))
        if not self.workloads:
            raise ValueError("a combination needs at least one workload")

    @property
    def num_contexts(self) -> int:
        """How many cores the combination occupies."""
        return len(self.workloads)

    def assignment(self, spec) -> "CoreAssignment":
        """Pin this combination onto ``spec`` the way the paper does:
        multi-programmed combos spread one program per CU; multi-threaded
        runs pack threads onto consecutive cores."""
        from repro.hardware.platform import CoreAssignment

        if self.kind == "multiprogram":
            if self.num_contexts <= spec.num_cus:
                return CoreAssignment.one_per_cu(spec, self.workloads)
            return CoreAssignment.packed(self.workloads)
        return CoreAssignment.packed(self.workloads)


def spec_combinations() -> List[BenchmarkCombination]:
    """The 61 SPEC multi-programmed combinations (29 + 15 + 10 + 7)."""
    combos: List[BenchmarkCombination] = []
    for full in SPEC_PROGRAMS:
        prefix = full.split(".")[0]
        combos.append(
            BenchmarkCombination(
                name=prefix,
                suite=Suite.SPEC,
                workloads=(spec_program(full),),
                kind="multiprogram",
            )
        )
    for group in (_SPEC_DOUBLES, _SPEC_TRIPLES, _SPEC_QUADS):
        for prefixes in group:
            combos.append(
                BenchmarkCombination(
                    name="+".join(prefixes),
                    suite=Suite.SPEC,
                    workloads=tuple(spec_program(p) for p in prefixes),
                    kind="multiprogram",
                )
            )
    return combos


_THREAD_COUNTS = (1, 2, 4, 8)


def parsec_runs() -> List[BenchmarkCombination]:
    """The 51 PARSEC multi-threaded runs (13 programs x 4 thread counts,
    minus the 8-thread facesim run to match the paper's count)."""
    runs: List[BenchmarkCombination] = []
    for name in PARSEC_PROGRAMS:
        for threads in _THREAD_COUNTS:
            if name == "facesim" and threads == 8:
                continue
            program = parsec_program(name)
            runs.append(
                BenchmarkCombination(
                    name="{}-{}t".format(name, threads),
                    suite=Suite.PARSEC,
                    workloads=(program,) * threads,
                    kind="multithread",
                )
            )
    return runs


def npb_runs() -> List[BenchmarkCombination]:
    """The 40 NPB multi-threaded runs (10 kernels x 4 thread counts)."""
    runs: List[BenchmarkCombination] = []
    for name in NPB_PROGRAMS:
        for threads in _THREAD_COUNTS:
            program = npb_program(name)
            runs.append(
                BenchmarkCombination(
                    name="{}-{}t".format(name, threads),
                    suite=Suite.NPB,
                    workloads=(program,) * threads,
                    kind="multithread",
                )
            )
    return runs


def build_roster() -> List[BenchmarkCombination]:
    """All 152 benchmark combinations, SPEC then PARSEC then NPB."""
    roster = spec_combinations() + parsec_runs() + npb_runs()
    if len(roster) != 152:
        raise AssertionError(
            "roster size drifted: {} (expected 152)".format(len(roster))
        )
    return roster


def single_threaded_programs() -> List[Workload]:
    """The 52 single-threaded programs (29 SPEC + 13 PARSEC + 10 NPB)
    used for the Section III CPI validation and the Observation checks."""
    programs = [spec_program(name) for name in SPEC_PROGRAMS]
    programs += [parsec_program(name) for name in PARSEC_PROGRAMS]
    programs += [npb_program(name) for name in NPB_PROGRAMS]
    if len(programs) != 52:
        raise AssertionError("expected 52 single-threaded programs")
    return programs
