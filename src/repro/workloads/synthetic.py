"""Parameterised synthetic workload generators.

Real SPEC CPU2006 / PARSEC / NPB binaries are unavailable, so each
program is replaced by a phase-structured synthetic analog.  A
:class:`ProgramProfile` captures the behavioural axes that matter to the
PPEP models -- memory intensity, FP intensity, branchiness, ILP, phase
volatility -- and :func:`make_program` expands a profile into a concrete
:class:`~repro.workloads.phases.Workload` with a deterministic,
name-seeded phase sequence.  The same program name always produces the
same workload, across processes and runs.

The four convenience constructors (:func:`make_cpu_bound`,
:func:`make_memory_bound`, :func:`make_mixed`, :func:`make_phased`) are
the public shorthand used by examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.workloads.phases import Workload, WorkloadPhase

__all__ = [
    "ProgramProfile",
    "make_program",
    "make_cpu_bound",
    "make_memory_bound",
    "make_mixed",
    "make_phased",
]


@dataclass(frozen=True)
class ProgramProfile:
    """Behavioural knobs of a synthetic program, all in [0, 1] unless
    noted otherwise."""

    name: str
    #: 0 = fully cache-resident, 1 = DRAM-latency dominated.
    memory_intensity: float = 0.2
    #: 0 = integer only, 1 = FP pipeline saturated.
    fp_intensity: float = 0.2
    #: 0 = straight-line code, 1 = branch-heavy with poor prediction.
    branchiness: float = 0.4
    #: 0 = serial dependence chains (high core CPI), 1 = wide ILP.
    ilp: float = 0.5
    #: 0 = a single steady phase, 1 = rapid phase changes (the paper's
    #: DC / IS / dedup error mode).
    phase_volatility: float = 0.2
    #: Number of distinct phases in one loop of the program.
    num_phases: int = 5

    def __post_init__(self) -> None:
        for attr in (
            "memory_intensity",
            "fp_intensity",
            "branchiness",
            "ilp",
            "phase_volatility",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError("{} must lie in [0, 1]".format(attr))
        if self.num_phases < 1:
            raise ValueError("need at least one phase")


def _seed_from_name(name: str) -> int:
    """Stable 64-bit seed derived from a program name."""
    import hashlib

    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def make_program(profile: ProgramProfile, suite: str = "synthetic") -> Workload:
    """Expand a profile into a concrete phased workload.

    Phase parameters are drawn around the profile's axes with a
    name-seeded generator; phase lengths shrink as ``phase_volatility``
    grows (volatile programs change phase several times per 200 ms
    interval, steady ones hold a phase for many intervals).
    """
    rng = np.random.default_rng(_seed_from_name(profile.name))
    phases: List[WorkloadPhase] = []

    # Steady programs: ~2e9-5e9 instructions per phase (several seconds).
    # Volatile programs: down to ~6e7 instructions (several per interval).
    base_len = 3.0e9 * (1.0 - profile.phase_volatility) ** 2 + 6.0e7

    for i in range(profile.num_phases):
        wobble = lambda scale=0.30: float(1.0 + rng.uniform(-scale, scale))

        mem = np.clip(profile.memory_intensity * wobble(0.45), 0.0, 1.0)
        fp = np.clip(profile.fp_intensity * wobble(0.35), 0.0, 1.0)
        br = np.clip(profile.branchiness * wobble(0.25), 0.0, 1.0)
        ilp = np.clip(profile.ilp * wobble(0.20), 0.05, 1.0)

        ccpi = 0.55 + 0.9 * (1.0 - ilp)
        # Exposed (leading-load) memory time and miss traffic are
        # deliberately decoupled: memory-level parallelism and
        # prefetching hide most miss latency on real cores, so even a
        # very memory-bound program exposes well under half its time to
        # memory while still saturating NB bandwidth and energy.  The
        # exposed share at 3.5 GHz tops out near ~45 %.
        mem_ns = (0.02 + 0.22 * mem * mem) * wobble(0.25)
        branch_rate = 0.06 + 0.17 * br
        mispredict = branch_rate * (0.005 + 0.075 * br * wobble(0.3))
        l2_miss = 0.002 + 0.055 * mem * mem
        # Per-event rates carry substantial variation *independent* of
        # the behavioural axes (instruction mix is program idiosyncrasy,
        # not a function of memory-boundness); without it the nine model
        # features would be collinear in ways real suites are not.
        uops = 1.05 + 0.45 * fp + 0.1 * br + 0.4 * float(rng.random())
        retire_cpi = 0.25 + 0.18 * (1.0 - ilp)

        phases.append(
            WorkloadPhase(
                name="{}-p{}".format(profile.name, i),
                instructions=float(base_len * wobble(0.5)),
                ccpi=float(ccpi),
                mem_ns=float(mem_ns),
                uops_per_inst=float(uops),
                fpu_per_inst=float(0.03 + 0.75 * fp * wobble(0.3)),
                ic_fetch_per_inst=float(0.12 + 0.25 * float(rng.random())),
                dc_access_per_inst=float(
                    0.22 + 0.30 * float(rng.random()) + 0.12 * mem
                ),
                l2_request_per_inst=float(
                    0.005 + 0.06 * float(rng.random()) + 0.08 * mem
                ),
                branch_per_inst=float(branch_rate),
                mispredict_per_inst=float(mispredict),
                l2_miss_per_inst=float(l2_miss),
                l3_miss_ratio=float(np.clip(0.25 + 0.55 * mem, 0.0, 0.95)),
                retire_cpi=float(retire_cpi),
                hidden_per_inst=float(
                    0.02 + 0.08 * mem * wobble(0.5) + 0.15 * float(rng.random())
                ),
                toggle_factor=float(wobble(0.22)),
            )
        )

    return Workload(profile.name, phases, total_instructions=None, suite=suite)


def make_cpu_bound(name: str = "cpu-bound", **overrides) -> Workload:
    """A compute-dominated program (458.sjeng-like)."""
    profile = ProgramProfile(
        name=name,
        memory_intensity=0.05,
        fp_intensity=0.15,
        branchiness=0.7,
        ilp=0.55,
        phase_volatility=0.1,
        **overrides,
    )
    return make_program(profile)


def make_memory_bound(name: str = "memory-bound", **overrides) -> Workload:
    """A DRAM-latency-dominated program (433.milc-like)."""
    profile = ProgramProfile(
        name=name,
        memory_intensity=0.85,
        fp_intensity=0.5,
        branchiness=0.2,
        ilp=0.5,
        phase_volatility=0.15,
        **overrides,
    )
    return make_program(profile)


def make_mixed(name: str = "mixed", **overrides) -> Workload:
    """A program alternating compute and memory behaviour."""
    profile = ProgramProfile(
        name=name,
        memory_intensity=0.45,
        fp_intensity=0.35,
        branchiness=0.45,
        ilp=0.5,
        phase_volatility=0.35,
        num_phases=8,
        **overrides,
    )
    return make_program(profile)


def make_phased(name: str = "phased", **overrides) -> Workload:
    """A rapidly phase-changing program (dedup / NPB-DC / NPB-IS-like).

    Its phases are shorter than a 200 ms interval at high VF states, so
    counter multiplexing visibly mis-extrapolates -- the error mode the
    paper attributes its outliers to.
    """
    profile = ProgramProfile(
        name=name,
        memory_intensity=0.55,
        fp_intensity=0.2,
        branchiness=0.5,
        ilp=0.45,
        phase_volatility=0.95,
        num_phases=10,
        **overrides,
    )
    return make_program(profile)
