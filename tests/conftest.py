"""Shared fixtures.

Unit tests build their own tiny objects; the fixtures here cover the
recurring needs: the two chip presets, a small deterministic platform,
simple workloads, and (for integration tests) a session-scoped
quick-scale experiment context so the expensive training happens once
per test session.
"""

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext
from repro.hardware.microarch import FX8320_SPEC, PHENOM_II_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.workloads.synthetic import (
    make_cpu_bound,
    make_memory_bound,
    make_mixed,
    make_phased,
)


@pytest.fixture
def spec():
    return FX8320_SPEC


@pytest.fixture
def phenom_spec():
    return PHENOM_II_SPEC


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def platform(spec):
    """A fresh FX-8320 platform, deterministic seed, PG off."""
    return Platform(spec, seed=123)


@pytest.fixture
def pg_platform(spec):
    """A platform with power gating enabled."""
    return Platform(spec, seed=123, power_gating=True)


@pytest.fixture
def cpu_workload():
    return make_cpu_bound("test-cpu")


@pytest.fixture
def mem_workload():
    return make_memory_bound("test-mem")


@pytest.fixture
def mixed_workload():
    return make_mixed("test-mixed")


@pytest.fixture
def phased_workload():
    return make_phased("test-phased")


@pytest.fixture
def busy_platform(platform, cpu_workload):
    """Platform with one CPU-bound workload on core 0."""
    platform.set_assignment(CoreAssignment.packed([cpu_workload]))
    return platform


@pytest.fixture(scope="session")
def quick_ctx():
    """A quick-scale experiment context, shared across the session.

    Training on the quick roster costs a few seconds; integration tests
    share one instance.
    """
    return ExperimentContext(scale="quick")


@pytest.fixture(scope="session")
def tiny_registry():
    """A fleet model registry with a minimal training config, shared
    across the session so each SKU trains at most once."""
    from repro.fleet import ModelRegistry
    from repro.workloads.suites import spec_combinations

    return ModelRegistry(
        combos=spec_combinations()[:3], bench_intervals=4, cool_intervals=20
    )
