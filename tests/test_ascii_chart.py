"""Tests for the ASCII time-series renderer."""

import pytest

from repro.analysis.ascii_chart import render_series


class TestRenderSeries:
    def test_basic_shape(self):
        chart = render_series([1.0, 2.0, 3.0], width=20, height=5)
        lines = chart.splitlines()
        assert len(lines) == 6  # height rows + axis
        assert lines[-1].rstrip().endswith("-" * 20)

    def test_y_axis_annotations(self):
        chart = render_series([10.0, 20.0], width=10, height=5)
        assert "20.0" in chart
        assert "10.0" in chart
        assert "15.0" in chart  # midpoint

    def test_monotone_series_descends_visually(self):
        chart = render_series(list(range(100)), width=40, height=8)
        lines = chart.splitlines()[:-1]
        first_row_cols = [i for i, c in enumerate(lines[0][10:]) if c == "*"]
        last_row_cols = [i for i, c in enumerate(lines[-1][10:]) if c == "*"]
        # The max value is plotted at the right, the min at the left.
        assert max(first_row_cols) > max(last_row_cols)

    def test_downsampling_preserves_width(self):
        chart = render_series(list(range(10000)), width=30, height=5)
        for line in chart.splitlines()[:-1]:
            body = line.split("|", 1)[1]
            assert len(body) == 30

    def test_short_series_not_stretched(self):
        chart = render_series([1.0, 2.0], width=30, height=5)
        body_chars = sum(line.count("*") for line in chart.splitlines())
        assert body_chars == 2

    def test_reference_layer_uses_its_label(self):
        chart = render_series(
            [5.0] * 10, reference=[10.0] * 10, labels=("*", "o", "-")
        )
        assert "-" * 5 in chart.replace("+", "").split("|", 1)[1] or "-" in chart

    def test_flat_series_does_not_divide_by_zero(self):
        chart = render_series([7.0] * 20)
        assert "*" in chart

    def test_two_series(self):
        chart = render_series([1.0] * 10, second=[2.0] * 10)
        assert "*" in chart and "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series([])
        with pytest.raises(ValueError):
            render_series([1.0], width=2, height=2)
