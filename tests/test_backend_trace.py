"""Trace recording/replay: bit-exact round-trips and foreign-data damage.

The headline property (swept exhaustively): **every byte-prefix of a
recorded trace either replays a valid prefix of the original intervals
or fails with one crisp error** -- never a crash, never a silently
mis-parsed stream.  Plus the individual repair/rejection contracts:
reorder, duplicate, gap, torn tail, mid-file corruption, unit
conversion, unknown units, and version skew.
"""

import json

import pytest

from repro.backends import (
    CapabilityError,
    EndOfTrace,
    TraceFormatError,
    TraceReplayBackend,
    TraceWriter,
    record_trace,
)
from repro.backends.trace import _row_crc
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import Platform
from repro.hardware.vfstates import VFState


def observables(sample):
    return (
        sample.index,
        sample.time,
        tuple(sample.cu_vfs),
        sample.nb_vf,
        sample.power_gating,
        tuple(sample.power_samples),
        sample.measured_power,
        sample.temperature,
        tuple(sample.core_events),
        sample.interval_s,
    )


@pytest.fixture(scope="module")
def samples():
    platform = Platform(FX8320_SPEC, seed=31)
    platform.set_all_vf(FX8320_SPEC.vf_table.fastest)
    return [platform.step() for _ in range(6)]


@pytest.fixture()
def trace_path(samples, tmp_path):
    path = str(tmp_path / "session.trace")
    assert record_trace(path, samples, spec_name=FX8320_SPEC.name) == 6
    return path


def split_trace(path):
    """(header line, columns line, data rows) of a recorded trace."""
    with open(path) as handle:
        lines = handle.read().rstrip("\n").split("\n")
    return lines[0], lines[1], lines[2:]


def write_trace(path, header, columns, rows):
    with open(path, "w") as handle:
        handle.write("\n".join([header, columns] + list(rows)) + "\n")


def reencode_row(line, edit):
    """Apply ``edit`` to a row's field list and restamp a valid CRC."""
    payload, _sep, _crc = line.rpartition(",")
    fields = payload.split(",")
    edit(fields)
    new_payload = ",".join(fields)
    return new_payload + "," + _row_crc(new_payload)


def edit_header_meta(header, **changes):
    prefix = header[: header.index("{")]
    meta = json.loads(header[header.index("{"):])
    meta.update(changes)
    return prefix + json.dumps(meta, sort_keys=True)


class TestRoundTrip:
    def test_replay_is_bit_identical(self, samples, trace_path):
        backend = TraceReplayBackend(trace_path)
        assert len(backend) == len(samples)
        replayed = [backend.read_interval() for _ in range(len(samples))]
        assert [observables(s) for s in replayed] == [
            observables(s) for s in samples
        ]
        assert backend.repairs == {}
        assert backend.warnings == []
        with pytest.raises(EndOfTrace):
            backend.read_interval()

    def test_ground_truth_uses_stand_ins(self, samples, trace_path):
        # A trace records observables only; nothing downstream may score
        # against truth that was never on the wire.
        replayed = TraceReplayBackend(trace_path).read_interval()
        assert replayed.true_power == replayed.measured_power
        assert replayed.instructions == [0.0] * len(replayed.core_events)
        assert replayed.breakdown is None

    def test_capabilities(self, trace_path, samples):
        caps = TraceReplayBackend(trace_path).capabilities()
        assert caps.finite
        assert not caps.can_set_vf and not caps.can_set_power_gating
        assert caps.num_cus == len(samples[0].cu_vfs)
        assert caps.num_cores == len(samples[0].core_events)
        assert caps.interval_s == samples[0].interval_s

    def test_vf_requests_are_recorded_noops(self, trace_path):
        backend = TraceReplayBackend(trace_path)
        before = backend.read_interval().cu_vfs[0]
        slow = FX8320_SPEC.vf_table.slowest
        backend.set_vf(0, slow)
        assert backend.requested_vfs == [(0, slow)]
        assert backend.get_vf(0) == before  # data is immutable history
        with pytest.raises(CapabilityError):
            backend.set_power_gating(True)

    def test_writer_rejects_reserved_vf_names(self, samples, tmp_path):
        import dataclasses

        bad_vf = VFState(1, 1.0, 2.0, name="a:b")
        poisoned = dataclasses.replace(samples[0], nb_vf=bad_vf)
        with pytest.raises(ValueError, match="reserved trace separator"):
            with TraceWriter(str(tmp_path / "bad.trace")) as writer:
                writer.write(poisoned)

    def test_writer_unwritable_path_is_crisp(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(TraceFormatError, match="cannot open"):
            TraceWriter(str(blocker / "trace"))


class TestBytePrefixSweep:
    def test_every_prefix_replays_a_valid_prefix_or_fails_cleanly(
        self, samples, trace_path, tmp_path
    ):
        with open(trace_path, "rb") as handle:
            blob = handle.read()
        reference = [observables(s) for s in samples]
        target = tmp_path / "prefix.trace"
        outcomes = {"replayed": 0, "rejected": 0}
        for cut in range(len(blob) + 1):
            target.write_bytes(blob[:cut])
            try:
                backend = TraceReplayBackend(str(target))
            except TraceFormatError as exc:
                # Crisp single-line diagnostic, pointing into the file.
                assert str(exc).startswith(str(target))
                outcomes["rejected"] += 1
                continue
            replayed = []
            while len(backend):
                replayed.append(observables(backend.read_interval()))
            assert replayed == reference[: len(replayed)]
            outcomes["replayed"] += 1
        # Both regimes occur: early cuts reject, later cuts replay.
        assert outcomes["rejected"] > 0
        assert outcomes["replayed"] > 0

    def test_full_byte_count_replays_everything(self, samples, trace_path):
        backend = TraceReplayBackend(trace_path)
        assert len(backend) == len(samples)


class TestRepairs:
    def test_torn_tail_drops_final_row_only(self, samples, trace_path):
        header, columns, rows = split_trace(trace_path)
        rows[-1] = rows[-1][: len(rows[-1]) // 2]
        write_trace(trace_path, header, columns, rows)
        backend = TraceReplayBackend(trace_path)
        assert len(backend) == len(samples) - 1
        assert backend.repairs == {"torn-tail": 1}
        assert any("torn" in w for w in backend.warnings)

    def test_mid_file_corruption_is_fatal(self, trace_path):
        header, columns, rows = split_trace(trace_path)
        flip = "X" if rows[2][40] != "X" else "Y"
        rows[2] = rows[2][:40] + flip + rows[2][41:]
        write_trace(trace_path, header, columns, rows)
        # Data rows start at line 3 (after header + columns comment).
        with pytest.raises(TraceFormatError, match=r":5: row CRC mismatch"):
            TraceReplayBackend(trace_path)

    def test_out_of_order_rows_are_resorted(self, samples, trace_path):
        header, columns, rows = split_trace(trace_path)
        rows[1], rows[3] = rows[3], rows[1]
        write_trace(trace_path, header, columns, rows)
        backend = TraceReplayBackend(trace_path)
        replayed = [backend.read_interval() for _ in range(len(samples))]
        assert [observables(s) for s in replayed] == [
            observables(s) for s in samples
        ]
        assert backend.repairs["reorder"] == 1

    def test_duplicate_rows_keep_first(self, samples, trace_path):
        header, columns, rows = split_trace(trace_path)
        shadow = reencode_row(rows[2], lambda f: f.__setitem__(6, repr(999.0)))
        write_trace(trace_path, header, columns,
                    rows[:3] + [shadow] + rows[3:])
        backend = TraceReplayBackend(trace_path)
        assert len(backend) == len(samples)
        replayed = [backend.read_interval() for _ in range(len(samples))]
        assert replayed[2].measured_power == samples[2].measured_power
        assert backend.repairs["duplicate"] == 1

    def test_gaps_are_tallied_and_skipped(self, samples, trace_path):
        header, columns, rows = split_trace(trace_path)
        write_trace(trace_path, header, columns, rows[:2] + rows[4:])
        backend = TraceReplayBackend(trace_path)
        assert len(backend) == len(samples) - 2
        indices = []
        while len(backend):
            indices.append(backend.read_interval().index)
        assert indices == [0, 1, 4, 5]
        assert backend.repairs["gap"] == 1
        assert any("missing interval(s) 2..3" in w for w in backend.warnings)

    def test_milliwatt_traces_are_converted(self, samples, trace_path):
        header, columns, rows = split_trace(trace_path)

        def to_mw(fields):
            fields[5] = "|".join(
                repr(float(r) * 1000.0) for r in fields[5].split("|")
            )
            fields[6] = repr(float(fields[6]) * 1000.0)

        write_trace(
            trace_path,
            edit_header_meta(header, power_unit="mW"),
            columns,
            [reencode_row(row, to_mw) for row in rows],
        )
        backend = TraceReplayBackend(trace_path)
        assert backend.repairs["unit"] == 1
        first = backend.read_interval()
        assert first.measured_power == pytest.approx(
            samples[0].measured_power
        )
        assert first.power_samples[0] == pytest.approx(
            samples[0].power_samples[0]
        )

    def test_unknown_unit_is_fatal_not_silent(self, trace_path):
        header, columns, rows = split_trace(trace_path)
        write_trace(
            trace_path,
            edit_header_meta(header, power_unit="furlongs"),
            columns, rows,
        )
        with pytest.raises(TraceFormatError, match="unknown power unit"):
            TraceReplayBackend(trace_path)


class TestRejection:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "noise.trace"
        path.write_text("hello world\n")
        with pytest.raises(TraceFormatError, match="not a ppep-trace file"):
            TraceReplayBackend(str(path))

    def test_newer_version_rejected(self, trace_path):
        header, columns, rows = split_trace(trace_path)
        write_trace(
            trace_path, header.replace(" v1 ", " v2 "), columns, rows
        )
        with pytest.raises(TraceFormatError, match="newer than supported"):
            TraceReplayBackend(trace_path)

    def test_malformed_header_metadata(self, trace_path):
        header, columns, rows = split_trace(trace_path)
        write_trace(trace_path, header[: header.index("{") + 5], columns, rows)
        with pytest.raises(TraceFormatError, match="malformed header"):
            TraceReplayBackend(trace_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot open"):
            TraceReplayBackend(str(tmp_path / "nope.trace"))

    def test_header_only_trace_is_empty_not_broken(self, trace_path):
        header, columns, _rows = split_trace(trace_path)
        write_trace(trace_path, header, columns, [])
        backend = TraceReplayBackend(trace_path)
        assert len(backend) == 0
        with pytest.raises(EndOfTrace):
            backend.read_interval()
        with pytest.raises(EndOfTrace):
            backend.get_vf(0)

class TestCapabilityDerivation:
    def test_empty_trace_capabilities_come_from_meta(self, trace_path, samples):
        header, columns, _rows = split_trace(trace_path)
        write_trace(trace_path, header, columns, [])
        caps = TraceReplayBackend(trace_path).capabilities()
        first = samples[0]
        assert caps.num_cus == len(first.cu_vfs)
        assert caps.num_cores == len(first.core_events)
        assert caps.slices_per_interval == len(first.power_samples)
        assert caps.interval_s == first.interval_s

    def test_empty_trace_meta_interval_respects_time_unit(self, trace_path):
        header, columns, _rows = split_trace(trace_path)
        write_trace(
            trace_path, edit_header_meta(header, time_unit="ms"), columns, []
        )
        backend = TraceReplayBackend(trace_path)
        meta_interval = json.loads(header[header.index("{"):])["interval_s"]
        assert backend.capabilities().interval_s == pytest.approx(
            meta_interval * 1e-3
        )

    @pytest.mark.parametrize("dropped", ["cus", "cores", "slices", "interval_s"])
    def test_empty_trace_with_missing_geometry_is_fatal(
        self, trace_path, dropped
    ):
        # The old behavior silently defaulted missing geometry to zero
        # cores / a 0.2 s interval; a consumer sizing a fleet off that
        # got a zero-chip.  Now it is a crisp format error.
        header, columns, _rows = split_trace(trace_path)
        prefix = header[: header.index("{")]
        meta = json.loads(header[header.index("{"):])
        del meta[dropped]
        write_trace(trace_path, prefix + json.dumps(meta), columns, [])
        with pytest.raises(TraceFormatError, match=dropped):
            TraceReplayBackend(trace_path)

    def test_nonempty_trace_ignores_meta_lies(self, samples, trace_path):
        # Samples are authoritative: a header claiming the wrong geometry
        # must not override what the rows actually carry.
        header, columns, rows = split_trace(trace_path)
        write_trace(
            trace_path, edit_header_meta(header, cus=99, cores=0), columns, rows
        )
        caps = TraceReplayBackend(trace_path).capabilities()
        assert caps.num_cus == len(samples[0].cu_vfs)
        assert caps.num_cores == len(samples[0].core_events)


class TestUnitTallyAudit:
    def test_zero_row_trace_unit_warning_surfaces_exactly_once(
        self, trace_path
    ):
        header, columns, _rows = split_trace(trace_path)
        write_trace(
            trace_path, edit_header_meta(header, power_unit="mW"), columns, []
        )
        backend = TraceReplayBackend(trace_path)
        assert backend.repairs["unit"] == 1
        assert len([w for w in backend.warnings if "power" in w]) == 1

    def test_power_and_time_conversion_each_warn_once(self, trace_path):
        header, columns, _rows = split_trace(trace_path)
        write_trace(
            trace_path,
            edit_header_meta(header, power_unit="mW", time_unit="ms"),
            columns, [],
        )
        backend = TraceReplayBackend(trace_path)
        # Two converted quantities: two counts, two distinct lines.
        assert backend.repairs["unit"] == 2
        assert len(backend.warnings) == 2
        assert any("power" in w for w in backend.warnings)
        assert any("time" in w for w in backend.warnings)

    def test_torn_tail_plus_unit_no_double_append(self, samples, trace_path):
        header, columns, rows = split_trace(trace_path)

        def to_mw(fields):
            fields[5] = "|".join(
                repr(float(r) * 1000.0) for r in fields[5].split("|")
            )
            fields[6] = repr(float(fields[6]) * 1000.0)

        rows = [reencode_row(row, to_mw) for row in rows]
        rows[-1] = rows[-1][: len(rows[-1]) // 2]
        write_trace(
            trace_path, edit_header_meta(header, power_unit="mW"), columns, rows
        )
        backend = TraceReplayBackend(trace_path)
        assert backend.repairs == {"unit": 1, "torn-tail": 1}
        assert len(backend.warnings) == 2
        assert len(backend) == len(samples) - 1


class TestEncodingPins:
    def test_non_ascii_meta_round_trips(self, samples, tmp_path):
        path = str(tmp_path / "unicode.trace")
        record_trace(path, samples, spec_name="FX-8320 \u00b5arch \u2014 caf\u00e9")
        backend = TraceReplayBackend(path)
        assert backend.meta["spec"] == "FX-8320 \u00b5arch \u2014 caf\u00e9"
        assert len(backend) == len(samples)
        assert backend.repairs == {}

    def test_trace_bytes_identical_across_locales(self, tmp_path):
        # The row CRC hashes UTF-8 payload bytes: a trace recorded under
        # LC_ALL=C must be byte-identical to one recorded under a UTF-8
        # locale, or replay on another machine fails CRC.
        import os
        import subprocess
        import sys

        script = tmp_path / "write_trace.py"
        script.write_text(
            "import sys\n"
            "from repro.backends import record_trace\n"
            "from repro.hardware.microarch import FX8320_SPEC\n"
            "from repro.hardware.platform import Platform\n"
            "platform = Platform(FX8320_SPEC, seed=31)\n"
            "platform.set_all_vf(FX8320_SPEC.vf_table.fastest)\n"
            "samples = [platform.step() for _ in range(3)]\n"
            "record_trace(sys.argv[1], samples,"
            " spec_name='FX \\u00b5arch')\n"
        )
        blobs = {}
        for tag, locale in (("c", "C"), ("utf8", "C.UTF-8")):
            out = tmp_path / ("trace." + tag)
            env = dict(os.environ)
            env["LC_ALL"] = locale
            env["LANG"] = locale
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            result = subprocess.run(
                [sys.executable, str(script), str(out)],
                env=env, capture_output=True, text=True,
            )
            assert result.returncode == 0, result.stderr
            blobs[tag] = out.read_bytes()
        assert blobs["c"] == blobs["utf8"]
        # And the bytes replay (CRC-clean) regardless of who reads them.
        replay = TraceReplayBackend(str(tmp_path / "trace.c"))
        assert len(replay) == 3
        assert replay.repairs == {}
