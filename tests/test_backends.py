"""The backend boundary: simulator equivalence, fault injection, guard.

Pins the three contracts DESIGN.md section 13 promises:

1. the backend boundary is free -- driving a ``SimulatorBackend``
   through :func:`run_backend_controlled` is bit-identical to driving
   the wrapped platform through :func:`run_controlled`;
2. ``FlakyBackend`` is deterministic (same seed + spec => same fault
   schedule) and a disabled spec is bitwise-invisible;
3. ``BackendGuard`` retries transients with bounded budgets, degrades
   to flagged last-good samples, quarantines persistent failure, and
   never absorbs termination (``EndOfTrace``).
"""

import pytest

from repro.backends import (
    BackendError,
    BackendGuard,
    BackendIOError,
    BackendTimeout,
    CapabilityError,
    EndOfTrace,
    FlakyBackend,
    FlakySpec,
    GuardConfig,
    SimulatorBackend,
    TelemetryBackend,
    run_backend_controlled,
)
from repro.dvfs.governor import run_controlled
from repro.faults import TelemetryFilter
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import Platform


def make_platform(seed=11):
    platform = Platform(FX8320_SPEC, seed=seed)
    platform.set_all_vf(FX8320_SPEC.vf_table.fastest)
    return platform


def observables(sample):
    return (
        sample.index,
        sample.time,
        tuple(sample.cu_vfs),
        sample.nb_vf,
        sample.power_gating,
        tuple(sample.power_samples),
        sample.measured_power,
        sample.temperature,
        tuple(sample.core_events),
        sample.interval_s,
    )


class CyclingController:
    """Deterministic non-trivial controller: walks the VF table."""

    def __init__(self, spec=FX8320_SPEC):
        self.spec = spec
        self.step = 0

    def reset(self):
        self.step = 0

    def decide(self, sample):
        states = list(self.spec.vf_table)
        vf = states[self.step % len(states)]
        self.step += 1
        return [vf] * self.spec.num_cus


class ScriptedBackend(TelemetryBackend):
    """Delivers a scripted sequence of samples and exceptions.

    Exception *instances* in the script are raised (consuming the
    script position -- each attempt sees the next entry), samples are
    returned.  Actuation honours optional scripted failures too.
    """

    def __init__(self, script, inner_caps, actuation_error=None):
        self.script = list(script)
        self.cursor = 0
        self._caps = inner_caps
        self.actuation_error = actuation_error
        self.set_vf_calls = []

    def capabilities(self):
        return self._caps

    def read_interval(self):
        if self.cursor >= len(self.script):
            raise EndOfTrace("script exhausted")
        entry = self.script[self.cursor]
        self.cursor += 1
        if isinstance(entry, Exception):
            raise entry
        return entry

    def get_vf(self, cu_id):
        raise NotImplementedError

    def set_vf(self, cu_id, vf):
        if self.actuation_error is not None:
            raise self.actuation_error
        self.set_vf_calls.append((cu_id, vf))

    def get_power_gating(self):
        return False

    def set_power_gating(self, enabled):
        if self.actuation_error is not None:
            raise self.actuation_error


@pytest.fixture(scope="module")
def recorded_samples():
    """Six intervals from a fixed-seed platform (shared, read-only)."""
    platform = make_platform(seed=23)
    return [platform.step() for _ in range(6)]


def scripted(script, actuation_error=None):
    caps = SimulatorBackend(make_platform()).capabilities()
    return ScriptedBackend(script, caps, actuation_error=actuation_error)


class TestSimulatorBackend:
    def test_read_is_bitwise_platform_step(self):
        direct = make_platform(seed=3)
        wrapped = SimulatorBackend(make_platform(seed=3))
        for _ in range(4):
            assert observables(wrapped.read_interval()) == observables(
                direct.step()
            )

    def test_capabilities_reflect_geometry(self):
        caps = SimulatorBackend(make_platform()).capabilities()
        assert caps.can_set_vf and caps.can_set_power_gating
        assert not caps.finite
        assert caps.num_cus == FX8320_SPEC.num_cus
        assert caps.num_cores == FX8320_SPEC.num_cores
        assert caps.slices_per_interval >= 1

    def test_actuation_roundtrip(self):
        backend = SimulatorBackend(make_platform())
        slow = FX8320_SPEC.vf_table.slowest
        backend.set_vf(1, slow)
        assert backend.get_vf(1) == slow
        backend.set_power_gating(True)
        assert backend.get_power_gating()

    def test_loop_is_bit_identical_to_run_controlled(self):
        reference = run_controlled(
            make_platform(seed=9), CyclingController(), 5,
            initial_vf=FX8320_SPEC.vf_table.fastest,
        )
        boundary = run_backend_controlled(
            SimulatorBackend(make_platform(seed=9)), CyclingController(), 5,
            initial_vf=FX8320_SPEC.vf_table.fastest,
        )
        assert [observables(s) for s in boundary.samples] == [
            observables(s) for s in reference.samples
        ]
        assert boundary.decisions == reference.decisions


class TestFlakySpec:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="timeout_rate"):
            FlakySpec(timeout_rate=1.5)
        with pytest.raises(ValueError, match="stuck_duration_reads"):
            FlakySpec(stuck_rate=0.1, stuck_duration_reads=0)
        with pytest.raises(ValueError, match="outage_reads"):
            FlakySpec(outage_reads=-1)

    def test_enabled(self):
        assert not FlakySpec().enabled
        assert FlakySpec(garbage_rate=0.1).enabled
        assert FlakySpec(outage_start=5, outage_reads=2).enabled
        assert not FlakySpec(outage_start=5).enabled  # zero-length window
        assert FlakySpec.reference().enabled


class TestFlakyBackend:
    def test_disabled_spec_is_bitwise_invisible(self):
        inner = SimulatorBackend(make_platform(seed=4))
        flaky = FlakyBackend(inner, FlakySpec(), seed=99)
        direct = make_platform(seed=4)
        for _ in range(3):
            sample = flaky.read_interval()
            assert observables(sample) == observables(direct.step())
        # No randomness consumed, no attempt counted: the wrapper is
        # not merely equivalent, it is not there.
        assert flaky.attempts == 0
        assert flaky.counts == {}

    def test_same_seed_same_schedule(self):
        def outcome_stream(seed):
            flaky = FlakyBackend(
                SimulatorBackend(make_platform(seed=6)),
                FlakySpec.reference(scale=3.0),
                seed=seed,
            )
            outcomes = []
            for _ in range(40):
                try:
                    flaky.read_interval()
                    outcomes.append("ok")
                except BackendError as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes, dict(flaky.counts)

        first = outcome_stream(seed=13)
        again = outcome_stream(seed=13)
        other = outcome_stream(seed=14)
        assert first == again
        assert first != other

    def test_error_faults_consume_no_interval(self):
        flaky = FlakyBackend(
            SimulatorBackend(make_platform()),
            FlakySpec(timeout_rate=1.0),
            seed=0,
        )
        for _ in range(3):
            with pytest.raises(BackendTimeout):
                flaky.read_interval()
        # The inner platform never stepped: the next clean read (rate
        # dropped via a fresh wrapper around the same inner) is interval 0.
        clean = FlakyBackend(flaky.inner, FlakySpec(), seed=0)
        assert clean.read_interval().index == 0

    def test_garbage_reads_are_flagged_values(self):
        flaky = FlakyBackend(
            SimulatorBackend(make_platform()),
            FlakySpec(garbage_rate=1.0),
            seed=1,
        )
        sample = flaky.read_interval()
        assert all(r == FlakySpec().garbage_w for r in sample.power_samples)
        assert sample.measured_power == FlakySpec().garbage_w
        # Ground truth is never touched: only delivery is corrupted.
        assert sample.true_power != FlakySpec().garbage_w

    def test_partial_reads_keep_a_nonempty_strict_prefix(self):
        inner = SimulatorBackend(make_platform())
        full = inner.capabilities().slices_per_interval
        flaky = FlakyBackend(inner, FlakySpec(partial_rate=1.0), seed=2)
        for _ in range(5):
            sample = flaky.read_interval()
            assert 1 <= len(sample.power_samples) < full
            assert sample.measured_power == pytest.approx(
                sum(sample.power_samples) / len(sample.power_samples)
            )
        assert flaky.counts["partial"] == 5

    def test_stuck_episode_repeats_readings(self):
        flaky = FlakyBackend(
            SimulatorBackend(make_platform()),
            FlakySpec(stuck_rate=1.0, stuck_duration_reads=3),
            seed=3,
        )
        first = flaky.read_interval()  # nothing to stick to yet
        episode = [flaky.read_interval() for _ in range(3)]
        assert flaky.counts["stuck"] == 3
        for sample in episode:
            assert sample.power_samples == first.power_samples
        # Real telemetry resumes fresh under a clean wrapper.
        assert episode[-1].index == first.index + 3

    def test_outage_window(self):
        flaky = FlakyBackend(
            SimulatorBackend(make_platform()),
            FlakySpec(outage_start=2, outage_reads=3),
            seed=4,
        )
        results = []
        for _ in range(7):
            try:
                flaky.read_interval()
                results.append("ok")
            except BackendIOError:
                results.append("down")
        assert results == ["ok", "ok", "down", "down", "down", "ok", "ok"]
        assert flaky.counts["outage"] == 3

    def test_capability_name_is_annotated(self):
        flaky = FlakyBackend(
            SimulatorBackend(make_platform()), FlakySpec(), seed=0
        )
        assert flaky.capabilities().name == "flaky(simulator)"


class TestBackendGuard:
    def test_transient_error_is_retried(self, recorded_samples):
        backend = scripted(
            [BackendTimeout("blip"), recorded_samples[0]]
        )
        guard = BackendGuard(backend, GuardConfig(retries=2), sleep=lambda s: None)
        sample = guard.read_interval()
        assert observables(sample) == observables(recorded_samples[0])
        assert guard.stats["retries"] == 1
        assert guard.stats["degraded"] == 0
        assert guard.state == "ok"

    def test_exhausted_retries_degrade_to_stale_last_good(self, recorded_samples):
        good = recorded_samples[0]
        backend = scripted(
            [good] + [BackendIOError("t{}".format(i)) for i in range(3)]
        )
        guard = BackendGuard(backend, GuardConfig(retries=2), sleep=lambda s: None)
        assert guard.read_interval() is good
        degraded = guard.read_interval()
        assert degraded.faults == ("stale",)
        assert degraded.index == good.index + 1
        assert degraded.time == pytest.approx(good.time + good.interval_s)
        assert degraded.measured_power == good.measured_power
        assert guard.stats["degraded"] == 1
        assert guard.classifications == {"transient": 1}
        assert guard.state == "degraded"

    def test_degraded_redelivery_is_stale_detected_downstream(self, recorded_samples):
        # The whole design: a guard degradation needs no new plumbing
        # because the TelemetryFilter already BAD-flags the restamped
        # last-good payload as a stale redelivery.
        good = recorded_samples[0]
        backend = scripted(
            [good] + [BackendIOError("t{}".format(i)) for i in range(3)]
        )
        guard = BackendGuard(backend, GuardConfig(retries=2), sleep=lambda s: None)
        filt = TelemetryFilter(FX8320_SPEC)
        assert filt.ingest(guard.read_interval()).quality == "good"
        verdict = filt.ingest(guard.read_interval())
        assert verdict.quality == "bad"

    def test_first_read_failure_reraises_crisply(self):
        backend = scripted([BackendIOError("dead on arrival")] * 4)
        guard = BackendGuard(backend, GuardConfig(retries=2), sleep=lambda s: None)
        with pytest.raises(BackendIOError, match="dead on arrival"):
            guard.read_interval()

    def test_quarantine_entry_probe_and_exit(self, recorded_samples):
        good = recorded_samples[0]
        config = GuardConfig(retries=1, quarantine_streak=2)
        # 1 good read, then 2 fully failed reads (2 attempts each) ->
        # quarantine; then 1 failing probe (single attempt); then
        # recovery.
        script = (
            [good]
            + [BackendIOError("e{}".format(i)) for i in range(4)]
            + [BackendIOError("probe fails")]
            + [recorded_samples[1]]
        )
        backend = scripted(script)
        guard = BackendGuard(backend, config, sleep=lambda s: None)
        guard.read_interval()
        guard.read_interval()
        assert guard.state == "degraded"
        guard.read_interval()
        assert guard.state == "quarantined"
        assert guard.stats["quarantine_entries"] == 1
        before = backend.cursor
        guard.read_interval()  # quarantined: exactly one probe attempt
        assert backend.cursor == before + 1
        recovered = guard.read_interval()
        assert observables(recovered) == observables(recorded_samples[1])
        assert guard.state == "ok"
        assert guard.streak == 0
        assert guard.stats["quarantine_exits"] == 1

    def test_stuck_classification_on_repeating_error_text(self, recorded_samples):
        good = recorded_samples[0]
        backend = scripted(
            [good] + [BackendIOError("same text")] * 4
        )
        guard = BackendGuard(backend, GuardConfig(retries=1), sleep=lambda s: None)
        guard.read_interval()
        guard.read_interval()  # first degradation: transient
        guard.read_interval()  # identical text repeating: stuck
        assert guard.classifications == {"transient": 1, "stuck": 1}

    def test_termination_and_misuse_propagate(self, recorded_samples):
        guard = BackendGuard(
            scripted([]), GuardConfig(retries=2), sleep=lambda s: None
        )
        with pytest.raises(EndOfTrace):
            guard.read_interval()
        guard = BackendGuard(
            scripted([CapabilityError("cannot")]),
            GuardConfig(retries=2),
            sleep=lambda s: None,
        )
        with pytest.raises(CapabilityError):
            guard.read_interval()

    def test_actuation_failure_is_a_held_decision(self, recorded_samples):
        backend = scripted(
            [recorded_samples[0]],
            actuation_error=BackendIOError("bus stuck"),
        )
        guard = BackendGuard(backend, GuardConfig(retries=2), sleep=lambda s: None)
        guard.set_vf(0, FX8320_SPEC.vf_table.fastest)  # must not raise
        assert guard.stats["actuation_failures"] == 1
        assert guard.stats["retries"] == 3  # the full bounded budget

    def test_backoff_schedule_is_seeded_deterministic(self, recorded_samples):
        def sleeps(seed):
            recorded = []
            backend = scripted(
                [BackendTimeout("a"), BackendTimeout("b"), recorded_samples[0]]
            )
            guard = BackendGuard(
                backend, GuardConfig(retries=3), seed=seed,
                sleep=recorded.append,
            )
            guard.read_interval()
            return recorded

        assert sleeps(5) == sleeps(5)
        assert sleeps(5) != sleeps(6)
        envelope = GuardConfig()
        for attempt, delay in enumerate(sleeps(5)):
            assert delay <= 1.5 * min(
                envelope.backoff_base_s * 2.0**attempt,
                envelope.backoff_max_s,
            )

    def test_slow_read_tallied_without_perturbing_data(self, recorded_samples):
        ticks = iter([0.0, 10.0, 10.0, 10.0])
        guard = BackendGuard(
            scripted([recorded_samples[0]]),
            GuardConfig(timeout_s=0.5, retries=0),
            sleep=lambda s: None,
            clock=lambda: next(ticks),
        )
        sample = guard.read_interval()
        assert observables(sample) == observables(recorded_samples[0])
        assert guard.stats["slow_reads"] == 1
        assert guard.stats["degraded"] == 0

    def test_events_emitted_with_schema(self, recorded_samples):
        from repro.obs.events import EventLog

        good = recorded_samples[0]
        events = EventLog()
        backend = scripted(
            [good]
            + [BackendIOError("e{}".format(i)) for i in range(4)]
        )
        guard = BackendGuard(
            backend, GuardConfig(retries=1, quarantine_streak=2),
            events=events, sleep=lambda s: None,
        )
        for _ in range(3):
            guard.read_interval()
        assert len(events.of_type("backend_retry")) == 4
        degraded = events.of_type("backend_degraded")
        assert [e["streak"] for e in degraded] == [1, 2]
        quarantine = events.of_type("backend_quarantine")
        assert [e["action"] for e in quarantine] == ["enter"]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            GuardConfig(timeout_s=0.0)
        with pytest.raises(ValueError, match="retries"):
            GuardConfig(retries=-1)
        with pytest.raises(ValueError, match="quarantine_streak"):
            GuardConfig(quarantine_streak=0)


class TestRunBackendControlled:
    def test_finite_source_ends_with_partial_trajectory(self, recorded_samples, tmp_path):
        from repro.backends import TraceReplayBackend, record_trace

        path = str(tmp_path / "short.trace")
        record_trace(path, recorded_samples[:4])
        run = run_backend_controlled(
            TraceReplayBackend(path), CyclingController(), 10
        )
        assert len(run.samples) == 4
        assert len(run.decisions) == 4

    def test_initial_vf_skipped_without_capability(self, recorded_samples, tmp_path):
        from repro.backends import TraceReplayBackend, record_trace

        path = str(tmp_path / "short.trace")
        record_trace(path, recorded_samples[:2])
        # Must not raise even though the backend cannot actuate.
        run = run_backend_controlled(
            TraceReplayBackend(path), CyclingController(), 2,
            initial_vf=FX8320_SPEC.vf_table.slowest,
        )
        assert len(run.samples) == 2

    def test_rejects_wrong_decision_arity(self):
        class OneVF(CyclingController):
            def decide(self, sample):
                return [FX8320_SPEC.vf_table.fastest]  # too few CUs

        with pytest.raises(ValueError, match="one VF per CU"):
            run_backend_controlled(
                SimulatorBackend(make_platform()), OneVF(), 2
            )

    def test_rejects_nonpositive_intervals(self):
        with pytest.raises(ValueError, match="positive"):
            run_backend_controlled(
                SimulatorBackend(make_platform()), CyclingController(), 0
            )
