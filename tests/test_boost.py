"""Tests for the PPEP-driven boost controller extension."""

import pytest

from repro.analysis.trace import TraceLibrary
from repro.core.ppep import PPEPTrainer
from repro.dvfs.boost import BoostController, boosted_fx8320_spec
from repro.dvfs.governor import run_controlled
from repro.hardware.platform import CoreAssignment, Platform
from repro.workloads.suites import spec_combinations


@pytest.fixture(scope="module")
def boost_setup():
    spec = boosted_fx8320_spec()
    trainer = PPEPTrainer(spec, bench_intervals=8, cool_intervals=100)
    ppep = trainer.train(spec_combinations()[:4], TraceLibrary())
    return spec, ppep


class TestBoostedSpec:
    def test_seven_states_with_boost_on_top(self):
        spec = boosted_fx8320_spec()
        assert len(spec.vf_table) == 7
        assert spec.vf_table.fastest.frequency_ghz == pytest.approx(4.0)
        assert spec.vf_table.by_index(5).frequency_ghz == pytest.approx(3.5)

    def test_topology_unchanged(self):
        spec = boosted_fx8320_spec()
        assert spec.num_cores == 8
        assert spec.supports_power_gating


class TestBoostController:
    def make_platform(self, spec, n_busy=1, temperature=320.0):
        platform = Platform(spec, seed=77, power_gating=True,
                            initial_temperature=temperature)
        combo = spec_combinations()[6]
        platform.set_assignment(
            CoreAssignment.one_per_cu(spec, list(combo.workloads[:1]) * n_busy)
        )
        return platform

    def test_boosts_light_load_under_big_budget(self, boost_setup):
        spec, ppep = boost_setup
        controller = BoostController(ppep, power_budget=120.0)
        platform = self.make_platform(spec, n_busy=1)
        run = run_controlled(platform, controller, 4,
                             initial_vf=spec.vf_table.by_index(5))
        assert controller.is_boosting(run.decisions[-1])

    def test_respects_tight_budget(self, boost_setup):
        spec, ppep = boost_setup
        controller = BoostController(ppep, power_budget=30.0)
        platform = self.make_platform(spec, n_busy=4)
        run = run_controlled(platform, controller, 6,
                             initial_vf=spec.vf_table.by_index(5))
        # After the first decision takes effect, power stays under budget.
        for power in run.measured_powers[2:]:
            assert power < 30.0 * 1.15

    def test_thermal_ceiling_blocks_boost(self, boost_setup):
        spec, ppep = boost_setup
        controller = BoostController(
            ppep, power_budget=150.0, temperature_ceiling=300.0  # always hot
        )
        platform = self.make_platform(spec, n_busy=1, temperature=330.0)
        run = run_controlled(platform, controller, 3,
                             initial_vf=spec.vf_table.by_index(5))
        for decision in run.decisions:
            assert not controller.is_boosting(decision)
            assert max(vf.index for vf in decision) <= 5

    def test_parameter_validation(self, boost_setup):
        _spec, ppep = boost_setup
        with pytest.raises(ValueError):
            BoostController(ppep, power_budget=0.0)
        with pytest.raises(ValueError):
            BoostController(ppep, power_budget=50.0, margin=1.5)
