"""The chaos harness itself: specs, schedules, and the three injectors.

The harness carries the same two determinism contracts as the fault
injector, and everything else rides on them:

1. a disabled spec injects nothing and consumes no randomness, so a
   disabled harness is bitwise-identical to running without one;
2. the storm is a pure function of ``(spec, seed, index)`` -- two
   injectors built from the same spec deliver the same faults in the
   same order, regardless of timing.

Process faults are tested against a monkeypatched ``os.kill`` (no real
signals), disk faults against real checkpoint files on ``tmp_path``,
and the network proxy against a tiny asyncio echo server.
"""

import asyncio
import errno
import json
import os

import pytest

from repro.chaos import (
    ChaosHarness,
    ChaosProxy,
    ChaosSpec,
    DiskChaos,
    ProcessChaos,
    chaos_rng,
)
from repro.serve.checkpoint import (
    Checkpointer,
    read_checkpoint,
    write_checkpoint,
)


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="reset_rate"):
            ChaosSpec(reset_rate=1.5)
        with pytest.raises(ValueError, match="kill_rate"):
            ChaosSpec(kill_rate=-0.1)
        with pytest.raises(ValueError, match="delays"):
            ChaosSpec(delay_s=-1.0)
        with pytest.raises(ValueError, match="kill_burst"):
            ChaosSpec(kill_burst=0)
        with pytest.raises(ValueError, match="stop_ticks"):
            ChaosSpec(stop_ticks=0)

    def test_boundary_gates(self):
        assert not ChaosSpec().enabled
        assert ChaosSpec(duplicate_rate=0.1).network_enabled
        assert not ChaosSpec(duplicate_rate=0.1).process_enabled
        assert ChaosSpec(stop_rate=0.1).process_enabled
        assert ChaosSpec(torn_tmp_rate=0.1).disk_enabled
        assert ChaosSpec(enospc_rate=0.1).enabled

    def test_reference_storm_hits_every_boundary(self):
        spec = ChaosSpec.reference(seed=3)
        assert spec.network_enabled
        assert spec.process_enabled
        assert spec.disk_enabled
        assert spec.seed == 3

    def test_reference_scale_caps_probabilities(self):
        spec = ChaosSpec.reference(scale=100.0)
        assert spec.enospc_rate == 1.0
        assert spec.kill_rate == 1.0


class TestChaosRng:
    def test_same_key_same_stream(self):
        a = chaos_rng("net", 7, 12).random(4)
        b = chaos_rng("net", 7, 12).random(4)
        assert list(a) == list(b)

    def test_index_and_tag_and_seed_all_matter(self):
        base = chaos_rng("net", 7, 12).random()
        assert chaos_rng("net", 7, 13).random() != base
        assert chaos_rng("proc", 7, 12).random() != base
        assert chaos_rng("net", 8, 12).random() != base


class _FakeWorkers:
    """A manager stand-in: two live worker pids."""

    def __init__(self, pids=None):
        self.pids = pids if pids is not None else {"fx8320": 101, "phenom": 202}

    def worker_pids(self):
        return dict(self.pids)


@pytest.fixture
def signal_log(monkeypatch):
    """Capture ``(pid, signum)`` instead of delivering real signals."""
    log = []
    monkeypatch.setattr(
        "repro.chaos.process.os.kill",
        lambda pid, signum: log.append((pid, signum)),
    )
    return log


class TestProcessChaos:
    def test_disabled_spec_delivers_nothing(self, signal_log):
        chaos = ProcessChaos(ChaosSpec(seed=5))
        for _ in range(50):
            chaos.tick(_FakeWorkers())
        assert signal_log == []
        assert chaos.counts == {}

    def test_schedule_is_deterministic(self, signal_log):
        spec = ChaosSpec(kill_rate=0.5, stop_rate=0.3, stop_ticks=2, seed=11)
        first = ProcessChaos(spec)
        for _ in range(40):
            first.tick(_FakeWorkers())
        first_log = list(signal_log)
        assert first_log  # at those rates 40 ticks always fire something
        del signal_log[:]
        second = ProcessChaos(spec)
        for _ in range(40):
            second.tick(_FakeWorkers())
        assert signal_log == first_log
        assert second.counts == first.counts

    def test_stop_gets_continued_after_stop_ticks(self, signal_log):
        import signal as _signal

        chaos = ProcessChaos(ChaosSpec(stop_rate=1.0, stop_ticks=2, seed=0))
        workers = _FakeWorkers({"fx8320": 101})
        chaos.tick(workers)  # tick 0: SIGSTOP
        assert signal_log == [(101, _signal.SIGSTOP)]
        chaos.tick(workers)  # tick 1: still stopped, no double-stop
        assert chaos.counts["stop"] == 1
        chaos.tick(workers)  # tick 2: due -> SIGCONT
        assert (101, _signal.SIGCONT) in signal_log
        assert chaos.counts["cont"] == 1

    def test_resume_all_continues_everything(self, signal_log):
        import signal as _signal

        chaos = ProcessChaos(ChaosSpec(stop_rate=1.0, stop_ticks=100, seed=0))
        chaos.tick(_FakeWorkers({"fx8320": 101}))
        assert chaos.resume_all() == 1
        assert (101, _signal.SIGCONT) in signal_log
        assert chaos.resume_all() == 0  # nothing left stopped

    def test_exited_pid_is_not_an_error(self, monkeypatch):
        def vanished(pid, signum):
            raise ProcessLookupError(pid)

        monkeypatch.setattr("repro.chaos.process.os.kill", vanished)
        chaos = ProcessChaos(ChaosSpec(kill_rate=1.0, seed=0))
        chaos.tick(_FakeWorkers({"fx8320": 101}))
        assert chaos.counts.get("kill", 0) == 0  # nothing actually delivered


class TestDiskChaos:
    def test_disabled_spec_never_fires(self):
        chaos = DiskChaos(ChaosSpec(seed=9))
        assert all(chaos.draw("shard-a.json") is None for _ in range(30))
        assert chaos.counts == {}

    def test_schedule_deterministic_and_per_file(self):
        spec = ChaosSpec(enospc_rate=0.3, torn_tmp_rate=0.3, seed=21)
        a = [DiskChaos(spec).draw("x.json") for _ in range(1)]  # fresh each: index 0
        b = DiskChaos(spec)
        draws_b = [b.draw("x.json") for _ in range(20)]
        draws_c = [DiskChaos(spec).draw("x.json") for _ in range(1)][0]
        assert draws_b[0] == a[0] == draws_c
        # Same spec, fresh instance: the whole sequence replays.
        replay = DiskChaos(spec)
        assert [replay.draw("x.json") for _ in range(20)] == draws_b
        # A different file keys an independent schedule.
        other = DiskChaos(spec)
        assert [other.draw("y.json") for _ in range(20)] != draws_b

    def test_enospc_cleans_tmp_and_keeps_previous(self, tmp_path):
        path = str(tmp_path / "shard.json")
        write_checkpoint(path, {"processed": 7})
        chaos = DiskChaos(ChaosSpec(enospc_rate=1.0, seed=0))
        with pytest.raises(OSError) as exc_info:
            write_checkpoint(path, {"processed": 8}, chaos=chaos)
        assert exc_info.value.errno == errno.ENOSPC
        assert chaos.counts == {"enospc": 1}
        # The failed write cleaned its tmp and the old snapshot survives.
        assert [p.name for p in tmp_path.iterdir()] == ["shard.json"]
        assert read_checkpoint(path)["processed"] == 7

    def test_torn_write_litters_tmp_but_checkpoint_survives(self, tmp_path):
        path = str(tmp_path / "shard.json")
        write_checkpoint(path, {"processed": 7})
        chaos = DiskChaos(ChaosSpec(torn_tmp_rate=1.0, seed=0))
        with pytest.raises(OSError):
            write_checkpoint(path, {"processed": 8}, chaos=chaos)
        assert chaos.counts == {"torn": 1}
        litter = [
            p for p in tmp_path.iterdir()
            if p.name.startswith("shard.json.") and p.name.endswith(".tmp")
        ]
        assert len(litter) == 1
        # The torn tmp holds a strict prefix of the intended document.
        torn = litter[0].read_text()
        assert 0 < len(torn) < len(
            json.dumps({"checkpoint_version": 1, "processed": 8}, sort_keys=True)
        )
        # The real checkpoint was never replaced; cold start shrugs at
        # the litter.
        assert read_checkpoint(path)["processed"] == 7

    def test_checkpointer_absorbs_injected_failures(self, tmp_path):
        path = str(tmp_path / "shard.json")
        ckpt = Checkpointer(
            path,
            lambda: {"processed": 1},
            every_intervals=1,
            chaos=DiskChaos(ChaosSpec(enospc_rate=1.0, seed=0)),
        )
        assert ckpt.tick() is False
        assert ckpt.failures == 1
        assert ckpt.saves == 0
        assert read_checkpoint(path) is None
        # Without chaos the same checkpointer saves fine.
        ckpt.chaos = None
        assert ckpt.tick() is True
        assert read_checkpoint(path)["processed"] == 1


async def _echo_upstream(received):
    """A line server recording requests and acking ``{"n": i}``."""

    async def handler(reader, writer):
        while True:
            line = await reader.readline()
            if not line:
                break
            received.append(line.rstrip(b"\n"))
            writer.write(
                json.dumps({"n": len(received)}).encode() + b"\n"
            )
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


class TestChaosProxy:
    def _roundtrip(self, spec, lines, reads_per_line=1):
        """Send ``lines`` through a proxied echo server; return
        (requests seen upstream, responses seen by the client, proxy)."""

        async def scenario():
            received = []
            server, host, port = await _echo_upstream(received)
            proxy = ChaosProxy(spec)
            proxy_host, proxy_port = await proxy.start(host, port)
            reader, writer = await asyncio.open_connection(
                proxy_host, proxy_port
            )
            responses = []
            for line in lines:
                writer.write(line + b"\n")
                await writer.drain()
                for _ in range(reads_per_line):
                    responses.append(
                        await asyncio.wait_for(reader.readline(), timeout=5.0)
                    )
            writer.close()
            await proxy.stop()
            server.close()
            await server.wait_closed()
            return received, responses, proxy

        return asyncio.run(scenario())

    def test_disabled_spec_is_transparent(self):
        lines = [b'{"i": %d}' % i for i in range(5)]
        received, responses, proxy = self._roundtrip(ChaosSpec(seed=4), lines)
        assert received == lines
        assert len(responses) == 5
        assert proxy.counts == {}

    def test_duplicate_forwards_each_line_twice(self):
        lines = [b'{"i": 0}', b'{"i": 1}']
        received, responses, proxy = self._roundtrip(
            ChaosSpec(duplicate_rate=1.0, seed=4), lines, reads_per_line=2
        )
        assert received == [lines[0], lines[0], lines[1], lines[1]]
        assert proxy.counts["duplicate"] == 2

    def test_fragmented_lines_reassemble_upstream(self):
        lines = [b'{"payload": "' + b"x" * 64 + b'"}']
        received, _responses, proxy = self._roundtrip(
            ChaosSpec(fragment_rate=1.0, seed=4), lines
        )
        assert received == lines  # TCP reassembly is the server's job
        assert proxy.counts["fragment"] == 1

    def test_reset_tears_the_connection_down(self):
        async def scenario():
            received = []
            server, host, port = await _echo_upstream(received)
            proxy = ChaosProxy(ChaosSpec(reset_rate=1.0, seed=4))
            proxy_host, proxy_port = await proxy.start(host, port)
            reader, writer = await asyncio.open_connection(
                proxy_host, proxy_port
            )
            writer.write(b'{"i": 0}\n')
            await writer.drain()
            # The proxy truncated the line and dropped both sides: the
            # client sees EOF (or a reset) instead of a response.
            got = await asyncio.wait_for(reader.readline(), timeout=5.0)
            writer.close()
            await proxy.stop()
            server.close()
            await server.wait_closed()
            return got, proxy

        got, proxy = asyncio.run(scenario())
        assert got == b""  # EOF, never an ack
        assert proxy.counts["reset"] == 1


class TestChaosHarness:
    def test_bundles_all_three_boundaries(self):
        harness = ChaosHarness(ChaosSpec.reference(seed=2))
        assert harness.enabled
        assert harness.network.seed == 2
        assert harness.process.seed == 2
        assert harness.disk.seed == 2

    def test_stats_merge_with_boundary_prefixes(self):
        harness = ChaosHarness(ChaosSpec(seed=0))
        harness.network.counts["duplicate"] = 3
        harness.process.counts["kill"] = 1
        harness.disk.counts["torn"] = 2
        assert harness.stats() == {
            "net_duplicate": 3,
            "proc_kill": 1,
            "disk_torn": 2,
        }

    def test_disabled_harness_reports_disabled(self):
        assert not ChaosHarness(ChaosSpec(seed=0)).enabled
