"""Smoke tests for the command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_registry_contract(self):
        # Every registered experiment module exposes the uniform API.
        for name, (module, description) in EXPERIMENTS.items():
            assert callable(module.run), name
            assert callable(module.format_report), name
            assert description

    def test_run_table1_quick(self, capsys):
        assert main(["run", "table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "PMCx0c1" in out
        assert "finished in" in out

    def test_seed_flag_reseeds_context(self, capsys):
        from repro.experiments import common

        assert main(["run", "table1", "--scale", "quick", "--seed", "7"]) == 0
        assert "finished in" in capsys.readouterr().out
        assert (
            "quick", common.FX8320_SPEC.name, 7, None, "vector"
        ) in common._CONTEXTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFleetCommand:
    def test_fleet_smoke(self, capsys):
        assert main([
            "fleet", "--nodes", "2", "--intervals", "4", "--period", "2",
            "--cap-high", "180", "--cap-low", "100", "--training", "quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 nodes" in out
        assert "1 model(s) trained" in out
        assert "settle intervals" in out

    def test_fleet_rejects_nonpositive_nodes(self, capsys):
        assert main(["fleet", "--nodes", "0"]) == 1


class TestReportCommand:
    def test_assembles_reports(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig99.txt").write_text("made-up table\n")
        out = tmp_path / "summary.txt"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(out)]) == 0
        text = out.read_text()
        assert "fig99" in text and "made-up table" in text

    def test_missing_directory_fails_cleanly(self, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 1

    def test_empty_directory_fails_cleanly(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["report", "--results-dir", str(empty)]) == 1
