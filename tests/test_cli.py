"""Smoke tests for the command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_registry_contract(self):
        # Every registered experiment module exposes the uniform API.
        for name, (module, description) in EXPERIMENTS.items():
            assert callable(module.run), name
            assert callable(module.format_report), name
            assert description

    def test_run_table1_quick(self, capsys):
        assert main(["run", "table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "PMCx0c1" in out
        assert "finished in" in out

    def test_seed_flag_reseeds_context(self, capsys):
        from repro.experiments import common

        assert main(["run", "table1", "--scale", "quick", "--seed", "7"]) == 0
        assert "finished in" in capsys.readouterr().out
        assert (
            "quick", common.FX8320_SPEC.name, 7, None, "vector"
        ) in common._CONTEXTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultsCommand:
    def test_faults_smoke(self, capsys):
        assert main([
            "faults", "--scale", "quick", "--rates", "0.0", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "hardened" in out
        assert "PASS" in out
        assert "finished in" in out

    def test_rejects_out_of_range_rates(self, capsys):
        assert main(["faults", "--rates", "0.0", "3.0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one-line error, no traceback

    def test_rejects_unknown_vf_index(self, capsys):
        assert main(["faults", "--vf", "99"]) == 2
        err = capsys.readouterr().err
        assert "no VF state with index 99" in err
        assert "valid:" in err

    def test_rejects_unknown_combination(self, capsys):
        assert main(["faults", "--combo", "no-such-combo"]) == 2
        err = capsys.readouterr().err
        assert "unknown combination 'no-such-combo'" in err
        assert err.count("\n") == 1

    def test_rejects_unwritable_cache_dir(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("plain file\n")
        target = str(blocker / "cache")
        assert main(["faults", "--trace-cache", target]) == 2
        err = capsys.readouterr().err
        assert "not writable" in err
        assert err.count("\n") == 1


class TestBackendCommand:
    def test_record_then_replay(self, tmp_path, capsys):
        trace = str(tmp_path / "session.trace")
        assert main([
            "backend", "record", "--trace", trace, "--intervals", "6",
            "--scale", "quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 6 interval(s)" in out
        assert main(["backend", "replay", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "6 row(s)" in out
        assert "repairs: none" in out

    def test_rejects_unknown_action(self, capsys):
        assert main(["backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown backend action 'bogus'" in err
        assert err.count("\n") == 1  # one-line error, no traceback

    def test_replay_requires_trace(self, capsys):
        assert main(["backend", "replay"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--trace" in err
        assert err.count("\n") == 1

    def test_replay_rejects_missing_file(self, tmp_path, capsys):
        assert main([
            "backend", "replay", "--trace", str(tmp_path / "nope.trace"),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot open" in err
        assert err.count("\n") == 1

    def test_replay_rejects_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("not a trace\n")
        assert main(["backend", "replay", "--trace", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a ppep-trace file" in err
        assert err.count("\n") == 1

    def test_record_rejects_unwritable_target(self, tmp_path, capsys):
        blocker = tmp_path / "plain-file"
        blocker.write_text("in the way\n")
        target = str(blocker / "session.trace")
        assert main(["backend", "record", "--trace", target]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot write trace" in err
        assert err.count("\n") == 1

    def test_rejects_bad_budgets(self, capsys):
        assert main(["backend", "roundtrip", "--retries", "-1"]) == 2
        assert "--retries must be >= 0" in capsys.readouterr().err
        assert main(["backend", "roundtrip", "--timeout-s", "0"]) == 2
        assert "--timeout-s must be positive" in capsys.readouterr().err
        assert main(["backend", "roundtrip", "--intervals", "0"]) == 2
        assert "--intervals must be positive" in capsys.readouterr().err


class TestRunCacheValidation:
    def test_run_rejects_unwritable_cache_dir(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("plain file\n")
        target = str(blocker / "cache")
        assert main([
            "run", "table1", "--scale", "quick", "--trace-cache", target,
        ]) == 2
        err = capsys.readouterr().err
        assert "not writable" in err
        assert err.count("\n") == 1


class TestFleetCommand:
    def test_fleet_smoke(self, capsys):
        assert main([
            "fleet", "--nodes", "2", "--intervals", "4", "--period", "2",
            "--cap-high", "180", "--cap-low", "100", "--training", "quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 nodes" in out
        assert "1 model(s) trained" in out
        assert "settle intervals" in out

    def test_fleet_rejects_nonpositive_nodes(self, capsys):
        assert main(["fleet", "--nodes", "0"]) == 1


class TestReportCommand:
    def test_assembles_reports(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig99.txt").write_text("made-up table\n")
        out = tmp_path / "summary.txt"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(out)]) == 0
        text = out.read_text()
        assert "fig99" in text and "made-up table" in text

    def test_missing_directory_fails_cleanly(self, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 1

    def test_empty_directory_fails_cleanly(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["report", "--results-dir", str(empty)]) == 1


class TestBackendImportAction:
    def test_import_reports_per_vf_mae(self, capsys):
        import os

        recording = os.path.join(
            os.path.dirname(__file__), "data", "turbostat_single.tsv"
        )
        assert main([
            "backend", "import", "--trace", recording, "--scale", "quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 interval(s)" in out
        assert "import repairs: none" in out
        assert "VF5" in out

    def test_import_requires_trace(self, capsys):
        assert main(["backend", "import"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--trace" in err
        assert err.count("\n") == 1

    def test_import_rejects_missing_file(self, tmp_path, capsys):
        assert main([
            "backend", "import", "--trace", str(tmp_path / "nope.tsv"),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read recording" in err
        assert err.count("\n") == 1

    def test_import_rejects_corrupt_recording(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("Core\tCPU\tPkgWatt\n0\t0\t41.0\n")
        assert main([
            "backend", "import", "--trace", str(bad), "--scale", "quick",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a turbostat layout" in err
        assert err.count("\n") == 1

    def test_import_rejects_bad_interval(self, tmp_path, capsys):
        bad = tmp_path / "x.tsv"
        bad.write_text("stub\n")
        assert main([
            "backend", "import", "--trace", str(bad), "--interval-s", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert "--interval-s must be positive" in err
