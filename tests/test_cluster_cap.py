"""Unit and closed-loop tests for hierarchical fleet power capping."""

import numpy as np
import pytest

from repro.dvfs.power_capping import square_wave_cap
from repro.fleet import ClusterPowerManager, allocate_budget, make_fleet
from repro.hardware.microarch import FX8320_SPEC


class TestAllocateBudget:
    DEMAND = np.array([80.0, 40.0, 20.0])
    FLOOR = np.array([30.0, 20.0, 15.0])

    def test_uniform_splits_equally(self):
        shares = allocate_budget("uniform", 90.0, self.DEMAND, self.FLOOR)
        np.testing.assert_allclose(shares, [30.0, 30.0, 30.0])

    def test_proportional_follows_demand(self):
        shares = allocate_budget("proportional", 70.0, self.DEMAND, self.FLOOR)
        np.testing.assert_allclose(shares, [40.0, 20.0, 10.0])
        assert shares.sum() == pytest.approx(70.0)

    def test_proportional_zero_demand_falls_back_to_uniform(self):
        shares = allocate_budget(
            "proportional", 60.0, np.zeros(3), np.zeros(3)
        )
        np.testing.assert_allclose(shares, [20.0, 20.0, 20.0])

    def test_waterfill_grants_floors_then_fills(self):
        # Budget 95: floors take 65, the remaining 30 fills equally;
        # node 2 saturates at its 20 W demand (floor 15 + 5), and the
        # leftover tops up the unsaturated nodes.
        shares = allocate_budget("waterfill", 95.0, self.DEMAND, self.FLOOR)
        assert shares.sum() == pytest.approx(95.0)
        assert (shares >= self.FLOOR - 1e-9).all()
        assert shares[2] == pytest.approx(20.0)  # capped at demand
        assert shares[0] == pytest.approx(shares[1] + 10.0)  # equal fill

    def test_waterfill_saturated_fleet_leaves_budget_unspent(self):
        shares = allocate_budget("waterfill", 1000.0, self.DEMAND, self.FLOOR)
        np.testing.assert_allclose(shares, self.DEMAND)

    def test_waterfill_infeasible_budget_scales_floors(self):
        shares = allocate_budget("waterfill", 32.5, self.DEMAND, self.FLOOR)
        np.testing.assert_allclose(shares, self.FLOOR / 2.0)

    def test_shares_never_exceed_budget(self):
        for policy in ("uniform", "proportional", "waterfill"):
            shares = allocate_budget(policy, 55.0, self.DEMAND, self.FLOOR)
            assert shares.sum() <= 55.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_budget("nonsense", 50.0, self.DEMAND, self.FLOOR)
        with pytest.raises(ValueError):
            allocate_budget("uniform", -1.0, self.DEMAND, self.FLOOR)
        with pytest.raises(ValueError):
            allocate_budget("uniform", 50.0, self.DEMAND, self.FLOOR[:2])


class TestClusterPowerManager:
    def test_rejects_unknown_policy(self, tiny_registry):
        fleet = make_fleet([FX8320_SPEC], tiny_registry)
        with pytest.raises(ValueError):
            ClusterPowerManager(fleet, 100.0, policy="nonsense")

    def test_rejects_empty_run(self, tiny_registry):
        fleet = make_fleet([FX8320_SPEC], tiny_registry)
        manager = ClusterPowerManager(fleet, 100.0)
        with pytest.raises(ValueError):
            manager.run(0)

    @pytest.mark.parametrize("policy", ["proportional", "waterfill"])
    def test_settles_within_one_interval_of_cap_changes(
        self, tiny_registry, policy
    ):
        """The acceptance bar: fleet power back under the cluster cap
        within one decision interval of each cap change."""
        fleet = make_fleet([FX8320_SPEC] * 3, tiny_registry)
        schedule = square_wave_cap(3 * 85.0, 3 * 50.0, 5)
        manager = ClusterPowerManager(fleet, schedule, policy=policy)
        run = manager.run(15)
        result = run.evaluate()
        assert result.worst_settle <= 1
        # Any over-cap interval must be explainable: the uncontrolled
        # first interval (nodes start fastest) or a cap-drop interval.
        for i, (power, cap) in enumerate(zip(run.fleet_powers, run.caps)):
            if power > cap:
                assert i == 0 or run.caps[i] < run.caps[i - 1], (
                    "unexplained violation at interval {}: {:.1f} W > "
                    "{:.1f} W".format(i, power, cap)
                )

    def test_shares_respect_cluster_budget(self, tiny_registry):
        fleet = make_fleet([FX8320_SPEC] * 3, tiny_registry)
        manager = ClusterPowerManager(fleet, 180.0, policy="waterfill")
        run = manager.run(6)
        for shares in run.shares:
            assert sum(shares) <= 180.0 + 1e-6

    def test_demand_aware_beats_uniform_on_throughput(self, tiny_registry):
        """With unevenly loaded nodes, routing budget to the busy ones
        retires more instructions under the same cluster cap."""
        def run_policy(policy):
            fleet = make_fleet(
                [FX8320_SPEC] * 4, tiny_registry, busy_cus=[4, 1, 4, 1]
            )
            manager = ClusterPowerManager(fleet, 4 * 52.0, policy=policy)
            return manager.run(12)

        uniform = run_policy("uniform")
        proportional = run_policy("proportional")
        assert (
            proportional.total_instructions()
            > uniform.total_instructions()
        )

    def test_record_shapes(self, tiny_registry):
        fleet = make_fleet([FX8320_SPEC] * 2, tiny_registry)
        run = ClusterPowerManager(fleet, 150.0).run(4)
        assert run.node_names == ["node00", "node01"]
        assert len(run.caps) == len(run.node_powers) == 4
        assert all(len(row) == 2 for row in run.node_powers)
        assert len(run.fleet_powers) == 4
        assert run.total_instructions() > 0
