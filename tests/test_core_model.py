"""Unit tests for per-core execution (CoreRuntime)."""

import pytest

from repro.hardware.core_model import CoreRuntime, deterministic_unit
from repro.hardware.events import Event
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.northbridge import NorthBridge
from repro.hardware.vfstates import FX8320_VF_TABLE
from repro.workloads.microbench import bench_a
from repro.workloads.phases import Workload, WorkloadPhase

VF5 = FX8320_VF_TABLE.by_index(5)
VF2 = FX8320_VF_TABLE.by_index(2)


@pytest.fixture
def nb():
    return NorthBridge(FX8320_SPEC)


def make_core(workload=None):
    core = CoreRuntime(FX8320_SPEC, core_id=0)
    core.assign(workload)
    return core


def steady_workload(total=None, ccpi=1.0, mem_ns=0.2):
    phase = WorkloadPhase(
        name="steady", instructions=1e9, ccpi=ccpi, mem_ns=mem_ns
    )
    return Workload("steady", [phase], total_instructions=total)


class TestDeterministicUnit:
    def test_stable(self):
        assert deterministic_unit("abc") == deterministic_unit("abc")

    def test_in_range(self):
        for key in ("a", "b", "c", "longer-key"):
            assert -1.0 <= deterministic_unit(key) < 1.0

    def test_distinct_keys_differ(self):
        assert deterministic_unit("x|1") != deterministic_unit("x|2")


class TestIdleCore:
    def test_idle_core_produces_nothing(self, nb):
        core = make_core(None)
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        assert not result.busy
        assert result.instructions == 0.0
        assert result.events.cycles == 0.0


class TestExecution:
    def test_instruction_rate_matches_cpi(self, nb):
        core = make_core(steady_workload(ccpi=1.0, mem_ns=0.2))
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        # CPI = 1.0 + 0.2*3.5 = 1.7 -> inst = 3.5e9*0.02/1.7
        assert result.instructions == pytest.approx(3.5e9 * 0.02 / 1.7, rel=1e-6)

    def test_cycles_fill_the_slice(self, nb):
        core = make_core(steady_workload())
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        assert result.events.cycles == pytest.approx(3.5e9 * 0.02, rel=1e-6)

    def test_mab_wait_cycles_track_memory_time(self, nb):
        core = make_core(steady_workload(ccpi=1.0, mem_ns=0.4))
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        mcpi = result.events.mcpi
        assert mcpi == pytest.approx(0.4 * 3.5, rel=0.01)

    def test_contention_slows_execution(self, nb):
        free = make_core(steady_workload(mem_ns=0.4))
        jammed = make_core(steady_workload(mem_ns=0.4))
        r_free = free.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        r_jam = jammed.run_slice(0.02, VF5, nb, 2.0, 0.5, now=0.0)
        assert r_jam.instructions < r_free.instructions

    def test_mab_distortion_inflates_counter_only(self, nb):
        core_a = make_core(steady_workload(mem_ns=0.4))
        core_b = make_core(steady_workload(mem_ns=0.4))
        clean = core_a.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        pressured = core_b.run_slice(0.02, VF5, nb, 1.0, 0.9, now=0.0)
        # Same true time (contention fixed), inflated MAB counter.
        assert pressured.instructions == pytest.approx(clean.instructions)
        assert (
            pressured.events[Event.MAB_WAIT_CYCLES]
            > clean.events[Event.MAB_WAIT_CYCLES]
        )

    def test_dispatch_stalls_follow_eq6(self, nb):
        wl = steady_workload(ccpi=1.2, mem_ns=0.3)
        core = make_core(wl)
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        per_inst = result.events.per_instruction()
        cpi = result.events.cpi
        phase = wl.phases[0]
        gap_expected = (
            phase.retire_cpi
            + FX8320_SPEC.mispredict_penalty * phase.mispredict_per_inst
        )
        gap = cpi - per_inst[Event.DISPATCH_STALLS]
        assert gap == pytest.approx(gap_expected, rel=0.05)

    def test_observation1_holds_approximately(self, nb):
        wl = steady_workload()
        hi = make_core(wl)
        lo = make_core(wl)
        r_hi = hi.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        r_lo = lo.run_slice(0.02, VF2, nb, 1.0, 0.0, now=0.0)
        for event in (Event.RETIRED_UOPS, Event.DC_ACCESSES, Event.RETIRED_BRANCHES):
            a = r_hi.events.per_instruction()[event]
            b = r_lo.events.per_instruction()[event]
            assert a == pytest.approx(b, rel=0.15)
            # ... but not exactly (deterministic VF-dependent deviation).
        full_match = all(
            r_hi.events.per_instruction()[e] == r_lo.events.per_instruction()[e]
            for e in (Event.RETIRED_UOPS, Event.DC_ACCESSES)
        )
        assert not full_match


class TestPhaseBookkeeping:
    def test_phase_advances_across_boundary(self, nb):
        phases = [
            WorkloadPhase(name="a", instructions=2e7, ccpi=1.0, mem_ns=0.0),
            WorkloadPhase(name="b", instructions=2e9, ccpi=2.0, mem_ns=0.0),
        ]
        core = make_core(Workload("two", phases))
        core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        assert core.current_phase().name == "b"

    def test_wraps_around_phase_list(self, nb):
        phases = [
            WorkloadPhase(name="a", instructions=1e7, ccpi=1.0, mem_ns=0.0),
            WorkloadPhase(name="b", instructions=1e7, ccpi=1.0, mem_ns=0.0),
        ]
        core = make_core(Workload("loop", phases))
        for _ in range(20):
            core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        assert core.busy  # unbounded workload keeps looping

    def test_finishes_at_budget(self, nb):
        budget = 2e7  # under one 20 ms slice's worth (~4.1e7 at VF5)
        core = make_core(steady_workload(total=budget))
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=1.0)
        assert core.finished
        assert not core.busy
        assert result.instructions == pytest.approx(budget)
        assert 1.0 <= core.completion_time <= 1.02

    def test_no_progress_after_finish(self, nb):
        core = make_core(steady_workload(total=1e6))
        core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.02)
        assert result.instructions == 0.0

    def test_reassign_resets_state(self, nb):
        core = make_core(steady_workload(total=1e6))
        core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
        core.assign(steady_workload())
        assert core.busy
        assert core.instructions_done == 0.0

    def test_huge_instruction_counts_keep_progressing(self, nb):
        # Regression test for the float-precision stall: tiny phase
        # remainders must never wedge the phase pointer.
        phases = [
            WorkloadPhase(name="a", instructions=1.7e7 + 0.3, ccpi=0.7, mem_ns=0.0),
            WorkloadPhase(name="b", instructions=2.3e7 + 0.7, ccpi=1.1, mem_ns=0.1),
        ]
        core = make_core(Workload("precision", phases))
        core.instructions_done = 2e10  # simulate a long history
        for _ in range(50):
            result = core.run_slice(0.02, VF5, nb, 1.0, 0.0, now=0.0)
            assert result.instructions > 0

    def test_bandwidth_demand_zero_when_idle(self, nb):
        assert make_core(None).bandwidth_demand(VF5, nb, 1.0) == 0.0

    def test_bandwidth_demand_positive_for_missing_workload(self, nb):
        core = make_core(bench_a())
        assert core.bandwidth_demand(VF5, nb, 1.0) == 0.0  # L1 resident
