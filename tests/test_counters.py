"""Unit tests for performance-counter multiplexing."""

import pytest

from repro.hardware.counters import GROUP_A, GROUP_B, CounterUnit
from repro.hardware.events import Event, EventVector, NUM_EVENTS


def uniform_slice(value: float = 100.0) -> EventVector:
    return EventVector([value] * NUM_EVENTS)


class TestGrouping:
    def test_groups_partition_all_events(self):
        assert len(set(GROUP_A) | set(GROUP_B)) == NUM_EVENTS
        assert set(GROUP_A).isdisjoint(GROUP_B)

    def test_groups_fit_hardware_budget(self):
        assert len(GROUP_A) <= CounterUnit.NUM_HARDWARE_COUNTERS
        assert len(GROUP_B) <= CounterUnit.NUM_HARDWARE_COUNTERS

    def test_cpi_inputs_share_a_group(self):
        # E10/E11/E12 must be internally consistent, so they are
        # scheduled together.
        cpi_events = {
            Event.CPU_CLOCKS_NOT_HALTED,
            Event.RETIRED_INSTRUCTIONS,
            Event.MAB_WAIT_CYCLES,
        }
        assert cpi_events <= set(GROUP_B)

    def test_slices_alternate_groups(self):
        assert CounterUnit.group_of_slice(0) == 0
        assert CounterUnit.group_of_slice(1) == 1
        assert CounterUnit.group_of_slice(8) == 0


class TestExtrapolation:
    def test_stationary_program_extrapolates_exactly(self):
        unit = CounterUnit()
        for _ in range(10):
            unit.observe_slice(uniform_slice(100.0))
        estimate = unit.read_interval(10)
        for event in Event:
            assert estimate[event] == pytest.approx(1000.0)

    def test_phase_change_causes_group_skew(self):
        # Phase doubles its rates halfway through the interval, aligned
        # so group A sees more of the hot phase than group B would be
        # entitled to: extrapolated counts split away from the truth.
        unit = CounterUnit()
        truth = EventVector.zeros()
        for i in range(10):
            value = 100.0 if i != 9 else 2000.0  # burst in a group-B slice
            s = uniform_slice(value)
            truth += s
            unit.observe_slice(s)
        estimate = unit.read_interval(10)
        a_event = GROUP_A[0]
        b_event = GROUP_B[0]
        assert estimate[a_event] < truth[a_event]
        assert estimate[b_event] > truth[b_event]

    def test_read_resets_state(self):
        unit = CounterUnit()
        unit.observe_slice(uniform_slice(50.0))
        unit.read_interval(1)
        unit.observe_slice(uniform_slice(10.0))
        estimate = unit.read_interval(1)
        assert estimate[GROUP_A[0]] == pytest.approx(10.0)

    def test_never_scheduled_group_reads_zero(self):
        unit = CounterUnit()
        unit.observe_slice(uniform_slice(100.0))  # only group A ran
        estimate = unit.read_interval(1)
        assert estimate[GROUP_A[0]] == pytest.approx(100.0)
        assert estimate[GROUP_B[0]] == 0.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            CounterUnit().read_interval(0)

    def test_extrapolation_preserves_within_group_ratios(self):
        # Ratios of two same-group events survive multiplexing exactly.
        unit = CounterUnit()
        for i in range(10):
            s = EventVector.zeros()
            scale = 1.0 + i  # wildly non-stationary
            s[Event.CPU_CLOCKS_NOT_HALTED] = 200.0 * scale
            s[Event.RETIRED_INSTRUCTIONS] = 100.0 * scale
            unit.observe_slice(s)
        estimate = unit.read_interval(10)
        assert estimate.cpi == pytest.approx(2.0)
