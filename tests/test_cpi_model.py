"""Unit tests for the LL-MAB CPI predictor (Eq. 1) and the segment
methodology of Section III."""

import numpy as np
import pytest

from repro.core.cpi_model import (
    CPIModel,
    CPISample,
    segment_cycles,
    segment_prediction_errors,
)
from repro.hardware.events import Event, EventVector


def sample(cpi=2.0, mcpi=0.5, f=3.5):
    return CPISample(cpi=cpi, mcpi=mcpi, frequency_ghz=f)


class TestCPISample:
    def test_ccpi(self):
        assert sample(cpi=2.0, mcpi=0.5).ccpi == pytest.approx(1.5)

    def test_ccpi_clamped_nonnegative(self):
        assert sample(cpi=0.4, mcpi=0.5).ccpi == 0.0

    def test_from_events(self):
        events = EventVector.from_mapping(
            {
                Event.CPU_CLOCKS_NOT_HALTED: 400.0,
                Event.RETIRED_INSTRUCTIONS: 100.0,
                Event.MAB_WAIT_CYCLES: 100.0,
            }
        )
        s = CPISample.from_events(events, 2.0)
        assert s.cpi == pytest.approx(4.0)
        assert s.mcpi == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPISample(cpi=-1.0, mcpi=0.0, frequency_ghz=1.0)
        with pytest.raises(ValueError):
            CPISample(cpi=1.0, mcpi=0.0, frequency_ghz=0.0)


class TestEquationOne:
    def test_identity_at_same_frequency(self):
        s = sample()
        assert CPIModel.predict_cpi(s, s.frequency_ghz) == pytest.approx(s.cpi)

    def test_memory_cpi_scales_with_frequency(self):
        s = sample(cpi=2.0, mcpi=1.0, f=2.0)
        # CPI(4GHz) = 1.0 + 1.0 * 4/2 = 3.0
        assert CPIModel.predict_cpi(s, 4.0) == pytest.approx(3.0)
        assert CPIModel.predict_mcpi(s, 4.0) == pytest.approx(2.0)

    def test_cpu_bound_cpi_is_frequency_invariant(self):
        s = sample(cpi=1.5, mcpi=0.0, f=3.5)
        for f in (1.4, 2.3, 3.5):
            assert CPIModel.predict_cpi(s, f) == pytest.approx(1.5)

    def test_time_per_instruction(self):
        s = sample(cpi=2.0, mcpi=0.0, f=2.0)
        # 2 cycles at 2 GHz = 1 ns; at 4 GHz = 0.5 ns.
        assert CPIModel.predict_time_per_instruction_ns(s, 4.0) == pytest.approx(0.5)

    def test_speedup_bounds(self):
        cpu = sample(cpi=1.0, mcpi=0.0, f=1.4)
        mem = sample(cpi=5.0, mcpi=4.9, f=1.4)
        cpu_speedup = CPIModel.speedup(cpu, 3.5)
        mem_speedup = CPIModel.speedup(mem, 3.5)
        assert cpu_speedup == pytest.approx(2.5)
        assert 1.0 < mem_speedup < 1.1

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            CPIModel.predict_cpi(sample(), 0.0)


class TestSegmentation:
    def test_uniform_trace_splits_evenly(self):
        inst = [100.0] * 10
        cycles = [200.0] * 10
        segments = segment_cycles(inst, cycles, [500.0, 1000.0])
        assert segments == pytest.approx([1000.0, 1000.0])

    def test_interpolates_within_interval(self):
        inst = [100.0, 100.0]
        cycles = [100.0, 300.0]
        segments = segment_cycles(inst, cycles, [150.0])
        # First 150 instructions: all of interval 0 (100 cycles) plus
        # half of interval 1 (150 cycles).
        assert segments == pytest.approx([250.0])

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            segment_cycles([10.0], [10.0], [5.0, 5.0])

    def test_boundaries_cannot_exceed_trace(self):
        with pytest.raises(ValueError):
            segment_cycles([10.0], [10.0], [20.0])

    def test_prediction_errors_zero_for_perfect_model(self):
        src_inst = [100.0] * 10
        src_pred = [250.0] * 10
        tgt_inst = [125.0] * 8
        tgt_cycles = [312.5] * 8  # same cycles-per-instruction
        errors = segment_prediction_errors(
            src_inst, src_pred, tgt_inst, tgt_cycles, 200.0
        )
        assert np.allclose(errors, 0.0)

    def test_prediction_errors_detect_bias(self):
        src_inst = [100.0] * 10
        src_pred = [220.0] * 10  # predicts 2.2 cycles/inst
        tgt_inst = [100.0] * 10
        tgt_cycles = [200.0] * 10  # measured 2.0 cycles/inst
        errors = segment_prediction_errors(
            src_inst, src_pred, tgt_inst, tgt_cycles, 250.0
        )
        assert np.allclose(errors, 0.1)

    def test_too_short_for_segment(self):
        with pytest.raises(ValueError):
            segment_prediction_errors([1.0], [1.0], [1.0], [1.0], 100.0)
