"""Unit tests for the 4-fold cross-validation harness."""

import pytest

from repro.core.crossval import cross_validate, kfold_split


class TestKFold:
    def test_every_item_tested_exactly_once(self):
        items = list(range(20))
        splits = kfold_split(items, k=4, seed=1)
        tested = [item for _train, test in splits for item in test]
        assert sorted(tested) == items

    def test_train_and_test_disjoint(self):
        for train, test in kfold_split(list(range(17)), k=4):
            assert set(train).isdisjoint(test)
            assert len(train) + len(test) == 17

    def test_fold_sizes_near_equal(self):
        splits = kfold_split(list(range(152)), k=4)
        sizes = [len(test) for _train, test in splits]
        assert all(size == 38 for size in sizes)

    def test_deterministic_given_seed(self):
        a = kfold_split(list(range(30)), k=4, seed=9)
        b = kfold_split(list(range(30)), k=4, seed=9)
        assert a == b

    def test_seed_changes_split(self):
        a = kfold_split(list(range(30)), k=4, seed=1)
        b = kfold_split(list(range(30)), k=4, seed=2)
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_split([1, 2, 3], k=1)
        with pytest.raises(ValueError):
            kfold_split([1, 2], k=4)


class TestCrossValidate:
    def test_drives_train_and_test(self):
        items = list(range(8))
        trained_on = []

        def train_fn(train):
            trained_on.append(tuple(sorted(train)))
            return set(train)

        def test_fn(model, item):
            return {"item": item, "leaked": item in model}

        results = cross_validate(items, train_fn, test_fn, k=4, seed=3)
        assert len(results) == 8
        assert len(trained_on) == 4
        # No test item was ever inside its own training set.
        assert not any(r["leaked"] for r in results)
        assert all("fold" in r for r in results)
