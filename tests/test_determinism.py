"""Equivalence tests for the consolidated blake2b schedule helpers.

``repro.determinism`` replaced three inline implementations of the
seeded-schedule idiom (fault injector, chaos harness, client backoff
jitter).  The whole point of the consolidation is that *no recorded
schedule shifts*: these tests re-implement the historical formulas
verbatim and pin byte-for-byte equivalence, so a regression here means
previously recorded storms and traces would replay differently.
"""

import hashlib

import numpy as np
import pytest

from repro.chaos.spec import chaos_rng
from repro.determinism import schedule_rng, schedule_seed, schedule_uniform
from repro.faults.injection import _interval_seed
from repro.serve.client import ResilientClient


# -- historical formulas, re-implemented verbatim ----------------------------


def legacy_injector_seed(seed, index):
    text = "fault-injector|{}|{}".format(seed, index)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def legacy_chaos_rng(tag, seed, index):
    text = "chaos|{}|{}|{}".format(tag, seed, index)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return np.random.default_rng(int.from_bytes(digest, "little"))


def legacy_client_jitter(seed, index):
    key = "client|{}|{}".format(seed, index).encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return 0.5 + int.from_bytes(digest, "little") / 2.0**64


KEYS = [
    (0, 0),
    (0, 1),
    (1, 0),
    (20141213, 0),
    (20141213, 17),
    (-3, 999),
    (2**63, 12345),
]


class TestInjectorSeeds:
    def test_matches_legacy_formula(self):
        for seed, index in KEYS:
            assert _interval_seed(seed, index) == legacy_injector_seed(
                seed, index
            )

    def test_delegates_to_shared_helper(self):
        assert _interval_seed(7, 42) == schedule_seed("fault-injector", 7, 42)


class TestChaosRng:
    def test_matches_legacy_streams(self):
        for seed, index in KEYS:
            for tag in ("network", "process", "disk", "reset"):
                ours = chaos_rng(tag, seed, index).random(16)
                legacy = legacy_chaos_rng(tag, seed, index).random(16)
                assert ours.tobytes() == legacy.tobytes()

    def test_delegates_to_shared_helper(self):
        ours = chaos_rng("kill", 3, 9).integers(0, 2**31, 8)
        shared = schedule_rng("chaos", "kill", 3, 9).integers(0, 2**31, 8)
        assert ours.tobytes() == shared.tobytes()


class TestClientJitter:
    def test_matches_legacy_sequence(self):
        client = ResilientClient("localhost", 1, seed=20141213)
        for index in range(32):
            assert client._jitter() == legacy_client_jitter(20141213, index)

    def test_seed_changes_sequence(self):
        a = ResilientClient("localhost", 1, seed=1)
        b = ResilientClient("localhost", 1, seed=2)
        assert a._jitter() != b._jitter()


class TestScheduleHelpers:
    def test_seed_is_pure_function_of_key(self):
        assert schedule_seed("x", 1, 2) == schedule_seed("x", 1, 2)
        assert schedule_seed("x", 1, 2) != schedule_seed("x", 1, 3)
        assert schedule_seed("x", 1, 2) != schedule_seed("y", 1, 2)

    def test_parts_are_joined_not_concatenated(self):
        # ("ab", "c") and ("a", "bc") must key different schedules.
        assert schedule_seed("ab", "c") != schedule_seed("a", "bc")

    def test_uniform_in_unit_interval(self):
        draws = [schedule_uniform("u", 0, i) for i in range(256)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Sanity: draws are spread out, not clumped at one value.
        assert max(draws) - min(draws) > 0.5

    def test_rng_reproducible(self):
        a = schedule_rng("tag", 5, 6).random(8)
        b = schedule_rng("tag", 5, 6).random(8)
        assert a.tobytes() == b.tobytes()

    def test_stdlib_only_paths_avoid_numpy(self):
        # The module itself must not import numpy at top level: only
        # schedule_rng may pull it in, lazily.  (The repro package
        # __init__ imports numpy eagerly, so this loads the file
        # standalone to test the module's own imports.)
        import subprocess
        import sys

        import repro.determinism as mod

        code = (
            "import importlib.util, sys\n"
            "spec = importlib.util.spec_from_file_location("
            "'det_standalone', {!r})\n"
            "m = importlib.util.module_from_spec(spec)\n"
            "spec.loader.exec_module(m)\n"
            "m.schedule_seed('a', 1, 2); m.schedule_uniform('a', 1, 2)\n"
            "assert 'numpy' not in sys.modules, 'numpy leaked'\n"
            "m.schedule_rng('a', 1, 2).random()\n"
            "assert 'numpy' in sys.modules\n"
        ).format(mod.__file__)
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
