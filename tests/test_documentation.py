"""Documentation quality gates.

A reproduction is only useful if the next reader can navigate it; these
tests enforce the documentation floor mechanically: every module and
every public class/function in the library carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _library_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _library_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_classes_documented(self, module):
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue  # re-export; documented at home
            assert obj.__doc__ and obj.__doc__.strip(), "{}.{}".format(
                module.__name__, name
            )

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_functions_documented(self, module):
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            assert obj.__doc__ and obj.__doc__.strip(), "{}.{}".format(
                module.__name__, name
            )


class TestRepositoryDocs:
    def test_design_doc_lists_every_experiment_bench(self):
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        design = open(os.path.join(root, "DESIGN.md")).read()
        benches = [
            n for n in os.listdir(os.path.join(root, "benchmarks"))
            if n.startswith("bench_")
        ]
        # Every paper figure/table bench is indexed in DESIGN.md.
        for name in benches:
            if name in ("bench_nb_frontier.py", "bench_thread_packing.py"):
                continue  # extensions are indexed by module name instead
            assert name in design, name

    def test_experiments_ledger_covers_all_figures(self):
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        ledger = open(os.path.join(root, "EXPERIMENTS.md")).read()
        for figure in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 6",
                       "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11"):
            assert figure in ledger, figure
