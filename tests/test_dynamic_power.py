"""Unit tests for the Eq. 3 dynamic power model."""

import numpy as np
import pytest

from repro.core.dynamic_power import (
    DynamicPowerModel,
    dynamic_feature_vector,
    estimate_alpha,
    fit_dynamic_power_model,
)
from repro.hardware.events import Event, EventVector

V5 = 1.32


def make_model(weights=None, alpha=2.0):
    if weights is None:
        weights = tuple([1e-9] * 7 + [5e-8, 1e-10])
    return DynamicPowerModel(weights=weights, alpha=alpha, train_voltage=V5)


def synthetic_rows(n=200, seed=0):
    """Rows from a known nine-weight ground truth at V5."""
    rng = np.random.default_rng(seed)
    true = np.array([2.0, 1.0, 0.5, 0.8, 3.0, 0.4, 10.0, 100.0, 0.2]) * 1e-9
    rows = [rng.random(9) * 1e9 for _ in range(n)]
    targets = [float(r @ true) for r in rows]
    return rows, targets, true


class TestFeatureVector:
    def test_extracts_e1_to_e9(self):
        events = EventVector.from_mapping(
            {Event.RETIRED_UOPS: 10.0, Event.DISPATCH_STALLS: 20.0,
             Event.CPU_CLOCKS_NOT_HALTED: 99.0}
        )
        features = dynamic_feature_vector(events)
        assert features.shape == (9,)
        assert features[0] == 10.0
        assert features[8] == 20.0
        # E10 is not a model input.
        assert 99.0 not in features


class TestFit:
    def test_recovers_ground_truth(self):
        rows, targets, true = synthetic_rows()
        model = fit_dynamic_power_model(rows, targets, train_voltage=V5)
        assert np.asarray(model.weights) == pytest.approx(true, rel=1e-6)

    def test_negative_targets_clamped(self):
        rows, targets, _ = synthetic_rows(n=50)
        targets[0] = -5.0  # idle-model error artefact
        model = fit_dynamic_power_model(rows, targets, train_voltage=V5)
        assert all(w >= 0 for w in model.weights)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            fit_dynamic_power_model([np.ones(5)], [1.0], train_voltage=V5)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            DynamicPowerModel(weights=(1.0,) * 5, alpha=2.0, train_voltage=V5)
        with pytest.raises(ValueError):
            DynamicPowerModel(weights=(1.0,) * 9, alpha=2.0, train_voltage=0.0)


class TestEstimate:
    def test_identity_scale_at_training_voltage(self):
        model = make_model()
        features = np.ones(9) * 1e9
        expected = sum(model.weights) * 1e9
        assert model.estimate(features, V5) == pytest.approx(expected)

    def test_voltage_scales_only_core_events(self):
        model = make_model(alpha=2.0)
        features = np.ones(9) * 1e9
        half_v = V5 / 2
        core5 = model.core_term(features, V5)
        nb = model.nb_term(features)
        assert model.estimate(features, half_v) == pytest.approx(
            core5 * 0.25 + nb
        )

    def test_estimate_from_events(self):
        model = make_model()
        events = EventVector.from_mapping({Event.RETIRED_UOPS: 2e8})
        value = model.estimate_from_events(events, 0.2, V5)
        assert value == pytest.approx(model.weights[0] * 1e9)

    def test_input_validation(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.estimate(np.ones(4), V5)
        with pytest.raises(ValueError):
            model.estimate(np.ones(9), 0.0)

    def test_with_alpha(self):
        model = make_model(alpha=2.0).with_alpha(1.5)
        assert model.alpha == 1.5


class TestAlphaEstimation:
    def test_recovers_true_alpha(self):
        rows, _targets, true = synthetic_rows(n=100)
        model = DynamicPowerModel(
            weights=tuple(true), alpha=1.0, train_voltage=V5
        )
        # Build measurements at other voltages with alpha = 2.3.
        alpha_true = 2.3
        feats, targets, volts = [], [], []
        for voltage in (0.9, 1.0, 1.1):
            for row in rows[:30]:
                core = model.core_term(np.asarray(row), V5)
                nb = model.nb_term(np.asarray(row))
                targets.append(core * (voltage / V5) ** alpha_true + nb)
                feats.append(row)
                volts.append(voltage)
        estimated = estimate_alpha(model, feats, targets, volts)
        assert estimated == pytest.approx(alpha_true, abs=1e-6)

    def test_training_voltage_samples_ignored(self):
        rows, targets, true = synthetic_rows(n=10)
        model = DynamicPowerModel(weights=tuple(true), alpha=2.0, train_voltage=V5)
        with pytest.raises(ValueError):
            estimate_alpha(model, rows, targets, [V5] * len(rows))

    def test_alignment_checked(self):
        model = make_model()
        with pytest.raises(ValueError):
            estimate_alpha(model, [np.ones(9)], [1.0, 2.0], [1.0])
