"""Unit tests for energy/EDP prediction records and selection."""

import pytest

from repro.core.energy import EnergyPredictor, VFPrediction
from repro.hardware.platform import INTERVAL_S
from repro.hardware.vfstates import FX8320_VF_TABLE

VF5 = FX8320_VF_TABLE.by_index(5)
VF1 = FX8320_VF_TABLE.by_index(1)


def prediction(vf=VF5, ips=1e9, dynamic=30.0, idle=20.0, nb=8.0):
    return VFPrediction(
        vf=vf,
        core_cpis=(1.5,),
        instructions_per_second=ips,
        dynamic_power=dynamic,
        idle_power=idle,
        nb_power=nb,
    )


class TestVFPrediction:
    def test_chip_power(self):
        assert prediction().chip_power == pytest.approx(50.0)

    def test_core_power_complements_nb(self):
        p = prediction()
        assert p.core_power == pytest.approx(p.chip_power - p.nb_power)

    def test_energy_per_interval(self):
        assert prediction().energy_per_interval == pytest.approx(50.0 * INTERVAL_S)

    def test_energy_per_instruction(self):
        p = prediction(ips=1e9, dynamic=30.0, idle=20.0)
        assert p.energy_per_instruction == pytest.approx(50.0 / 1e9)

    def test_edp_per_instruction(self):
        p = prediction(ips=1e9)
        assert p.edp_per_instruction == pytest.approx(50.0 / 1e18)

    def test_idle_chip_has_infinite_energy_per_instruction(self):
        p = prediction(ips=0.0)
        assert p.energy_per_instruction == float("inf")
        assert p.edp_per_instruction == float("inf")


class TestSelection:
    def test_best_energy(self):
        fast = prediction(vf=VF5, ips=2e9, dynamic=60.0, idle=30.0)  # 45 nJ/inst
        slow = prediction(vf=VF1, ips=1e9, dynamic=10.0, idle=15.0)  # 25 nJ/inst
        assert EnergyPredictor.best_energy([fast, slow]) is slow

    def test_best_edp_prefers_speed(self):
        fast = prediction(vf=VF5, ips=2e9, dynamic=60.0, idle=30.0)
        slow = prediction(vf=VF1, ips=1e9, dynamic=10.0, idle=15.0)
        # EDP: fast 90/4e18 = 22.5e-18, slow 25/1e18 = 25e-18.
        assert EnergyPredictor.best_edp([fast, slow]) is fast

    def test_cap_selection_picks_fastest_eligible(self):
        a = prediction(vf=VF5, ips=2e9, dynamic=70.0, idle=30.0)  # 100 W
        b = prediction(vf=VF1, ips=1.5e9, dynamic=40.0, idle=20.0)  # 60 W
        c = prediction(vf=VF1, ips=1e9, dynamic=20.0, idle=15.0)  # 35 W
        chosen = EnergyPredictor.best_performance_under_cap([a, b, c], 65.0)
        assert chosen is b

    def test_cap_selection_none_when_impossible(self):
        a = prediction(dynamic=70.0, idle=30.0)
        assert EnergyPredictor.best_performance_under_cap([a], 10.0) is None

    def test_empty_predictions_rejected(self):
        with pytest.raises(ValueError):
            EnergyPredictor.best_energy([])
        with pytest.raises(ValueError):
            EnergyPredictor.best_edp([])

    def test_next_interval_energy(self):
        p = prediction()
        assert EnergyPredictor.next_interval_energy(p) == p.energy_per_interval
