"""Unit tests for the energy/EDP governors."""

import pytest

from repro.core.energy import VFPrediction
from repro.dvfs.energy_governor import EnergyGovernor, PolicyObjective, StaticGovernor
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.vfstates import FX8320_VF_TABLE


class FakePPEP:
    """A PPEP stand-in emitting pre-baked predictions."""

    def __init__(self, predictions):
        self.spec = FX8320_SPEC
        self._predictions = {p.vf.index: p for p in predictions}

    def analyze(self, sample):
        from repro.core.ppep import PPEPSnapshot

        return PPEPSnapshot(
            time=0.0,
            temperature=320.0,
            measured_power=50.0,
            states=[],
            predictions=self._predictions,
            current_estimate=50.0,
        )


def prediction(vf_index, ips, power):
    vf = FX8320_VF_TABLE.by_index(vf_index)
    return VFPrediction(
        vf=vf,
        core_cpis=(),
        instructions_per_second=ips,
        dynamic_power=power * 0.6,
        idle_power=power * 0.4,
        nb_power=power * 0.2,
    )


class TestEnergyGovernor:
    def test_energy_objective_picks_min_energy_per_inst(self):
        preds = [
            prediction(5, ips=2e9, power=100.0),  # 50 nJ/inst
            prediction(1, ips=1e9, power=30.0),  # 30 nJ/inst
        ]
        governor = EnergyGovernor(FakePPEP(preds), PolicyObjective.ENERGY)
        decision = governor.decide(sample=None)
        assert all(vf.index == 1 for vf in decision)

    def test_edp_objective_can_prefer_speed(self):
        preds = [
            prediction(5, ips=2e9, power=100.0),  # EDP 25e-18
            prediction(1, ips=1e9, power=30.0),  # EDP 30e-18
        ]
        governor = EnergyGovernor(FakePPEP(preds), PolicyObjective.EDP)
        decision = governor.decide(sample=None)
        assert all(vf.index == 5 for vf in decision)

    def test_idle_chip_parks_at_slowest(self):
        preds = [prediction(5, ips=0.0, power=40.0), prediction(1, ips=0.0, power=12.0)]
        governor = EnergyGovernor(FakePPEP(preds), PolicyObjective.ENERGY)
        decision = governor.decide(sample=None)
        assert all(vf.index == 1 for vf in decision)

    def test_objective_coerced_from_string(self):
        governor = EnergyGovernor(FakePPEP([prediction(1, 1e9, 10.0)]), "edp")
        assert governor.objective is PolicyObjective.EDP


class TestStaticGovernor:
    def test_always_returns_fixed_vf(self):
        vf3 = FX8320_VF_TABLE.by_index(3)
        governor = StaticGovernor(vf3, num_cus=4)
        decision = governor.decide(sample=None)
        assert len(decision) == 4
        assert all(vf is vf3 for vf in decision)
