"""Scalar vs vectorized engine equivalence.

The vectorized engine batches steady slices but must reproduce the
scalar reference path's interval samples -- same RNG draw order, same
arithmetic to within 1e-9 relative (batching reassociates a few sums at
the 1e-15 level; see ``repro/hardware/engine.py``).  These tests sweep
the scenarios that exercise every fallback path: idle cores, mixed
rosters, VF transitions with a non-zero switching penalty, power gating,
migration, NB states, and finite workloads completing mid-interval.
"""

import pytest

from repro.hardware.microarch import FX8320_SPEC, PHENOM_II_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.hardware.vfstates import NB_VF_LO
from repro.workloads.synthetic import (
    make_cpu_bound,
    make_memory_bound,
    make_mixed,
    make_phased,
)

REL_TOL = 1e-9


def _mixed_roster(n):
    factories = (make_cpu_bound, make_memory_bound, make_mixed, make_phased)
    return [
        factories[i % len(factories)]("wl-{}".format(i)) for i in range(n)
    ]


def _sample_fields(sample):
    """Every numeric field of an interval sample, flattened."""
    fields = [
        sample.time,
        sample.measured_power,
        sample.true_power,
        sample.temperature,
        sample.nb_utilisation,
    ]
    fields.extend(sample.power_samples)
    fields.extend(sample.instructions)
    for vec in sample.core_events:
        fields.extend(vec.as_list())
    for vec in sample.true_core_events:
        fields.extend(vec.as_list())
    if sample.breakdown is not None:
        b = sample.breakdown
        fields.extend(
            [
                b.base, b.cu_leakage, b.cu_active_idle, b.core_clock,
                b.core_dynamic, b.nb_leakage, b.nb_active_idle,
                b.nb_dynamic, b.housekeeping, b.total,
            ]
        )
    return fields


def assert_equivalent(scalar_samples, vector_samples):
    assert len(scalar_samples) == len(vector_samples)
    for s, v in zip(scalar_samples, vector_samples):
        for a, b in zip(_sample_fields(s), _sample_fields(v)):
            assert a == pytest.approx(b, rel=REL_TOL, abs=1e-12)


def _pair(spec=FX8320_SPEC, seed=7, **kwargs):
    return tuple(
        Platform(spec, seed=seed, engine=engine, **kwargs)
        for engine in ("scalar", "vector")
    )


class TestEngineEquivalence:
    def test_idle_chip(self):
        scalar, vector = _pair()
        assert_equivalent(scalar.run(5), vector.run(5))

    @pytest.mark.parametrize("power_gating", [False, True])
    def test_mixed_roster(self, power_gating):
        scalar, vector = _pair(seed=11, power_gating=power_gating)
        for p in (scalar, vector):
            p.set_assignment(
                CoreAssignment.packed(_mixed_roster(p.spec.num_cores))
            )
        assert_equivalent(scalar.run(8), vector.run(8))

    @pytest.mark.parametrize("power_gating", [False, True])
    def test_sparse_roster(self, power_gating):
        """Busy and idle cores in the same chip (PG gates idle CUs)."""
        scalar, vector = _pair(seed=13, power_gating=power_gating)
        for p in (scalar, vector):
            p.set_assignment(
                CoreAssignment(
                    {0: make_cpu_bound("a"), 5: make_memory_bound("b")}
                )
            )
        assert_equivalent(scalar.run(8), vector.run(8))

    def test_vf_transitions_with_penalty(self):
        """VF switches mid-run, including the transition stall penalty."""
        scalar, vector = _pair(seed=17, vf_transition_penalty_s=0.004)
        states = FX8320_SPEC.vf_table.ascending()
        outs = []
        for p in (scalar, vector):
            p.set_assignment(
                CoreAssignment.packed(_mixed_roster(p.spec.num_cores))
            )
            samples = []
            for step in range(6):
                p.set_cu_vf(step % p.spec.num_cus, states[step % len(states)])
                samples.extend(p.run(2))
            outs.append(samples)
        assert_equivalent(outs[0], outs[1])

    def test_nb_lo_state(self):
        scalar, vector = _pair(seed=19, nb_vf=NB_VF_LO)
        for p in (scalar, vector):
            p.set_assignment(
                CoreAssignment.packed(_mixed_roster(p.spec.num_cores))
            )
        assert_equivalent(scalar.run(6), vector.run(6))

    def test_finite_workloads_complete(self):
        """Budgeted workloads hit completion boundaries mid-interval."""
        scalar, vector = _pair(seed=23)
        for p in (scalar, vector):
            roster = [
                w.with_budget(2.0e8 * (1 + i % 3))
                for i, w in enumerate(_mixed_roster(p.spec.num_cores))
            ]
            p.set_assignment(CoreAssignment.packed(roster))
        assert_equivalent(
            scalar.run_until_finished(50), vector.run_until_finished(50)
        )
        assert scalar.completion_times() == pytest.approx(
            vector.completion_times(), rel=REL_TOL
        )

    def test_migration(self):
        scalar, vector = _pair(seed=29)
        outs = []
        for p in (scalar, vector):
            p.set_assignment(CoreAssignment({0: make_mixed("m")}))
            samples = list(p.run(3))
            p.migrate(0, p.spec.num_cores - 1)
            samples.extend(p.run(3))
            outs.append(samples)
        assert_equivalent(outs[0], outs[1])

    def test_phenom_spec(self):
        """The second SKU (no PG, different topology) agrees too."""
        scalar, vector = _pair(spec=PHENOM_II_SPEC, seed=31)
        for p in (scalar, vector):
            p.set_assignment(
                CoreAssignment.packed(_mixed_roster(p.spec.num_cores))
            )
        assert_equivalent(scalar.run(6), vector.run(6))


class TestEngineSelection:
    def test_vector_is_default(self):
        assert Platform(FX8320_SPEC).engine == "vector"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            Platform(FX8320_SPEC, engine="cuda")

    def test_vector_deterministic(self):
        runs = []
        for _ in range(2):
            p = Platform(FX8320_SPEC, seed=3, engine="vector")
            p.set_assignment(
                CoreAssignment.packed(_mixed_roster(p.spec.num_cores))
            )
            runs.append([s.measured_power for s in p.run(5)])
        assert runs[0] == runs[1]
