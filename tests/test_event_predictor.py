"""Unit tests for the cross-VF hardware event predictor."""

import pytest

from repro.core.event_predictor import CoreEventState, EventPredictor
from repro.hardware.events import CORE_PRIVATE_EVENTS, Event, EventVector
from repro.hardware.platform import INTERVAL_S
from repro.hardware.vfstates import FX8320_VF_TABLE

VF5 = FX8320_VF_TABLE.by_index(5)
VF2 = FX8320_VF_TABLE.by_index(2)
VF1 = FX8320_VF_TABLE.by_index(1)


def interval_events(
    inst=1e8,
    cpi=2.0,
    mcpi=0.7,
    ds_per_inst=0.9,
    uops_per_inst=1.3,
    duty=1.0,
    vf=VF5,
):
    """Synthesize a consistent interval event vector."""
    cycles = inst * cpi
    available = vf.frequency_ghz * 1e9 * INTERVAL_S
    scale = duty * available / cycles
    inst *= scale
    return EventVector.from_mapping(
        {
            Event.RETIRED_INSTRUCTIONS: inst,
            Event.CPU_CLOCKS_NOT_HALTED: inst * cpi,
            Event.MAB_WAIT_CYCLES: inst * mcpi,
            Event.DISPATCH_STALLS: inst * ds_per_inst,
            Event.RETIRED_UOPS: inst * uops_per_inst,
            Event.DC_ACCESSES: inst * 0.4,
            Event.L2_MISSES: inst * 0.01,
        }
    )


def state(vf=VF5, **kw):
    return CoreEventState(interval_events(vf=vf, **kw), vf, INTERVAL_S)


class TestCoreEventState:
    def test_idle_state_inactive(self):
        s = CoreEventState(EventVector.zeros(), VF5, INTERVAL_S)
        assert not s.active
        assert s.duty == 0.0

    def test_duty_cycle(self):
        s = state(duty=0.5)
        assert s.duty == pytest.approx(0.5, rel=1e-6)

    def test_obs2_gap(self):
        s = state(cpi=2.0, ds_per_inst=0.9)
        assert s.obs2_gap == pytest.approx(1.1)

    def test_instruction_rate_cpu_bound_scales_with_f(self):
        s = state(cpi=1.5, mcpi=0.0)
        r5 = s.instructions_per_second_at(VF5)
        r1 = s.instructions_per_second_at(VF1)
        assert r5 / r1 == pytest.approx(VF5.frequency_ghz / VF1.frequency_ghz)

    def test_instruction_rate_memory_bound_barely_scales(self):
        s = state(cpi=3.0, mcpi=2.9)
        r5 = s.instructions_per_second_at(VF5)
        r1 = s.instructions_per_second_at(VF1)
        assert r5 / r1 < 1.1

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CoreEventState(EventVector.zeros(), VF5, 0.0)


class TestEventPredictor:
    predictor = EventPredictor()

    def test_idle_core_predicts_zero(self):
        s = CoreEventState(EventVector.zeros(), VF5, INTERVAL_S)
        predicted = self.predictor.predict(s, VF1)
        assert predicted.instructions_per_second == 0.0
        assert predicted.rates == EventVector.zeros()

    def test_self_prediction_reproduces_rates(self):
        s = state()
        predicted = self.predictor.predict(s, VF5)
        for event in CORE_PRIVATE_EVENTS:
            original_rate = s.per_inst[event] * s.instructions / INTERVAL_S
            assert predicted.rates[event] == pytest.approx(
                original_rate, rel=1e-6
            )
        assert predicted.cpi == pytest.approx(s.cpi_sample.cpi)

    def test_observation1_preserved(self):
        s = state()
        predicted = self.predictor.predict(s, VF2)
        inst_rate = predicted.rates[Event.RETIRED_INSTRUCTIONS]
        for event in CORE_PRIVATE_EVENTS:
            if s.per_inst[event] > 0:
                assert predicted.rates[event] / inst_rate == pytest.approx(
                    s.per_inst[event], rel=1e-9
                )

    def test_observation2_preserved(self):
        s = state(cpi=2.0, mcpi=0.7, ds_per_inst=0.9)
        predicted = self.predictor.predict(s, VF2)
        inst_rate = predicted.rates[Event.RETIRED_INSTRUCTIONS]
        ds_per_inst = predicted.rates[Event.DISPATCH_STALLS] / inst_rate
        assert predicted.cpi - ds_per_inst == pytest.approx(
            s.obs2_gap, rel=1e-9
        )

    def test_stall_rate_clamped_at_zero(self):
        # A core with no stalls and big memory CPI predicted down in
        # frequency: CPI(f') < gap would give negative stalls.
        s = state(cpi=2.0, mcpi=1.9, ds_per_inst=0.0)
        predicted = self.predictor.predict(s, VF1)
        assert predicted.rates[Event.DISPATCH_STALLS] >= 0.0

    def test_clock_rate_prediction(self):
        s = state(duty=1.0)
        predicted = self.predictor.predict(s, VF1)
        assert predicted.rates[Event.CPU_CLOCKS_NOT_HALTED] == pytest.approx(
            VF1.frequency_ghz * 1e9, rel=1e-6
        )

    def test_duty_carries_over(self):
        full = self.predictor.predict(state(duty=1.0), VF2)
        half = self.predictor.predict(state(duty=0.5), VF2)
        assert half.instructions_per_second == pytest.approx(
            full.instructions_per_second / 2, rel=1e-6
        )

    def test_chip_rates_sum_cores(self):
        states = [state(), state(), CoreEventState(EventVector.zeros(), VF5, INTERVAL_S)]
        chip = self.predictor.predict_chip_rates(states, VF2)
        single = self.predictor.predict(states[0], VF2).rates
        assert chip[Event.RETIRED_INSTRUCTIONS] == pytest.approx(
            2 * single[Event.RETIRED_INSTRUCTIONS], rel=1e-6
        )
