"""Unit tests for the Table I event definitions and EventVector."""

import pytest

from repro.hardware.events import (
    CORE_PRIVATE_EVENTS,
    DYNAMIC_POWER_EVENTS,
    EVENT_TABLE,
    Event,
    EventVector,
    NB_PROXY_EVENTS,
    NUM_EVENTS,
    PERFORMANCE_EVENTS,
    VOLTAGE_SCALED_EVENTS,
    format_event_table,
)


class TestEventDefinitions:
    def test_twelve_events(self):
        assert NUM_EVENTS == 12
        assert len(EVENT_TABLE) == 12

    def test_paper_ids_are_one_based(self):
        assert Event.RETIRED_UOPS.paper_id == "E1"
        assert Event.MAB_WAIT_CYCLES.paper_id == "E12"

    def test_dynamic_power_events_are_e1_to_e9(self):
        assert [e.paper_id for e in DYNAMIC_POWER_EVENTS] == [
            "E{}".format(i) for i in range(1, 10)
        ]

    def test_performance_events_are_e10_to_e12(self):
        assert [e.paper_id for e in PERFORMANCE_EVENTS] == ["E10", "E11", "E12"]

    def test_voltage_scaled_events_exclude_nb_proxies(self):
        assert set(VOLTAGE_SCALED_EVENTS).isdisjoint(NB_PROXY_EVENTS)
        assert len(VOLTAGE_SCALED_EVENTS) == 7

    def test_nb_proxies_are_l2_miss_and_dispatch_stalls(self):
        assert Event.L2_MISSES in NB_PROXY_EVENTS
        assert Event.DISPATCH_STALLS in NB_PROXY_EVENTS

    def test_core_private_events_are_e1_to_e8(self):
        assert len(CORE_PRIVATE_EVENTS) == 8
        assert Event.DISPATCH_STALLS not in CORE_PRIVATE_EVENTS

    def test_pmc_codes_match_paper(self):
        codes = {info.event: info.pmc_code for info in EVENT_TABLE}
        assert codes[Event.RETIRED_INSTRUCTIONS] == "PMCx0c0"
        assert codes[Event.MAB_WAIT_CYCLES] == "PMCx069"
        assert codes[Event.DISPATCH_STALLS] == "PMCx0d1"

    def test_info_roundtrip(self):
        for event in Event:
            assert event.info.event is event

    def test_format_event_table_mentions_all_rows(self):
        text = format_event_table()
        for info in EVENT_TABLE:
            assert info.pmc_code in text
            assert info.paper_id in text


class TestEventVector:
    def test_zeros_by_default(self):
        vec = EventVector()
        assert all(v == 0.0 for v in vec)
        assert len(vec) == NUM_EVENTS

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            EventVector([1.0, 2.0])

    def test_item_access(self):
        vec = EventVector.zeros()
        vec[Event.RETIRED_UOPS] = 5.0
        assert vec[Event.RETIRED_UOPS] == 5.0

    def test_from_mapping_partial(self):
        vec = EventVector.from_mapping({Event.L2_MISSES: 3.0})
        assert vec[Event.L2_MISSES] == 3.0
        assert vec[Event.RETIRED_UOPS] == 0.0

    def test_addition(self):
        a = EventVector.from_mapping({Event.RETIRED_UOPS: 1.0})
        b = EventVector.from_mapping({Event.RETIRED_UOPS: 2.0})
        assert (a + b)[Event.RETIRED_UOPS] == 3.0

    def test_inplace_addition(self):
        a = EventVector.from_mapping({Event.IC_FETCHES: 1.0})
        a += EventVector.from_mapping({Event.IC_FETCHES: 4.0})
        assert a[Event.IC_FETCHES] == 5.0

    def test_subtraction(self):
        a = EventVector.from_mapping({Event.DC_ACCESSES: 5.0})
        b = EventVector.from_mapping({Event.DC_ACCESSES: 2.0})
        assert (a - b)[Event.DC_ACCESSES] == 3.0

    def test_scalar_multiplication_commutes(self):
        a = EventVector.from_mapping({Event.RETIRED_BRANCHES: 2.0})
        assert (a * 3)[Event.RETIRED_BRANCHES] == 6.0
        assert (3 * a)[Event.RETIRED_BRANCHES] == 6.0

    def test_division(self):
        a = EventVector.from_mapping({Event.RETIRED_UOPS: 6.0})
        assert (a / 2)[Event.RETIRED_UOPS] == 3.0

    def test_copy_is_independent(self):
        a = EventVector.from_mapping({Event.RETIRED_UOPS: 1.0})
        b = a.copy()
        b[Event.RETIRED_UOPS] = 9.0
        assert a[Event.RETIRED_UOPS] == 1.0

    def test_equality(self):
        a = EventVector.from_mapping({Event.RETIRED_UOPS: 1.0})
        b = EventVector.from_mapping({Event.RETIRED_UOPS: 1.0})
        assert a == b
        b[Event.L2_MISSES] = 1.0
        assert a != b

    def test_cpi_property(self):
        vec = EventVector.from_mapping(
            {
                Event.CPU_CLOCKS_NOT_HALTED: 200.0,
                Event.RETIRED_INSTRUCTIONS: 100.0,
            }
        )
        assert vec.cpi == 2.0

    def test_cpi_zero_when_idle(self):
        assert EventVector.zeros().cpi == 0.0

    def test_mcpi_property(self):
        vec = EventVector.from_mapping(
            {
                Event.MAB_WAIT_CYCLES: 50.0,
                Event.RETIRED_INSTRUCTIONS: 100.0,
            }
        )
        assert vec.mcpi == 0.5

    def test_per_instruction_normalisation(self):
        vec = EventVector.from_mapping(
            {
                Event.RETIRED_UOPS: 130.0,
                Event.RETIRED_INSTRUCTIONS: 100.0,
            }
        )
        per_inst = vec.per_instruction()
        assert per_inst[Event.RETIRED_UOPS] == pytest.approx(1.3)
        assert per_inst[Event.RETIRED_INSTRUCTIONS] == pytest.approx(1.0)

    def test_per_instruction_of_idle_core_is_zero(self):
        assert EventVector.zeros().per_instruction() == EventVector.zeros()

    def test_rates(self):
        vec = EventVector.from_mapping({Event.RETIRED_UOPS: 10.0})
        assert vec.rates(0.2)[Event.RETIRED_UOPS] == pytest.approx(50.0)

    def test_rates_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            EventVector.zeros().rates(0.0)

    def test_as_dict_covers_all_events(self):
        d = EventVector.zeros().as_dict()
        assert set(d) == set(Event)
