"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; they must not rot.  Each
is executed in a subprocess (its own interpreter, like a user would)
with a generous timeout; a non-zero exit or traceback fails the test.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


class TestExamples:
    def test_all_examples_discovered(self):
        assert len(EXAMPLES) >= 5  # quickstart + at least four scenarios
        assert "quickstart.py" in EXAMPLES

    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs(self, script):
        result = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, script)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Traceback" not in result.stderr
        assert result.stdout.strip()  # examples narrate what they do
