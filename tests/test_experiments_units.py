"""Unit tests for experiment plumbing that works on small inputs
(no full context training required)."""

import pytest

from repro.experiments.common import ExperimentContext, FixedWorkRun, _quick_roster
from repro.experiments.cpi_validation import single_thread_combo
from repro.workloads.suites import Suite, spec_program


class TestQuickRoster:
    def test_has_suite_diversity(self):
        roster = _quick_roster()
        suites = {c.suite for c in roster}
        assert suites == {Suite.SPEC, Suite.PARSEC, Suite.NPB}

    def test_has_multiprogram_combos(self):
        roster = _quick_roster()
        assert any("+" in c.name for c in roster)

    def test_reasonable_size(self):
        assert 15 <= len(_quick_roster()) <= 30


class TestContextConstruction:
    def test_scale_validated(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale="huge")

    def test_quick_scale_shrinks_traces(self):
        ctx = ExperimentContext(scale="quick")
        assert ctx.trainer.BENCH_INTERVALS < 40
        assert len(ctx.roster) < 152

    def test_groups_cover_roster(self):
        ctx = ExperimentContext(scale="quick")
        groups = ctx.combos_by_suite()
        assert len(groups["ALL"]) == len(ctx.roster)
        assert (
            len(groups["SPE"]) + len(groups["PAR"]) + len(groups["NPB"])
            == len(ctx.roster)
        )


class TestFixedWorkRun:
    def test_per_thread_metrics(self):
        run = FixedWorkRun(
            vf_index=3, n_instances=4, time_s=2.0, chip_energy=80.0
        )
        assert run.per_thread_energy == pytest.approx(20.0)
        assert run.per_thread_edp == pytest.approx(40.0)


class TestSingleThreadCombo:
    def test_wraps_one_workload(self):
        combo = single_thread_combo(spec_program("433"))
        assert combo.num_contexts == 1
        assert combo.suite is Suite.SPEC
        assert combo.name.endswith("-1t")


class TestFrontierPoint:
    def test_dominance(self):
        from repro.experiments.nb_frontier import FrontierPoint

        fast_cheap = FrontierPoint(5, "NB2.2", time_s=1.0, energy_j=10.0)
        slow_costly = FrontierPoint(1, "NB2.2", time_s=2.0, energy_j=20.0)
        slow_cheap = FrontierPoint(1, "NB1.1", time_s=2.0, energy_j=5.0)
        assert fast_cheap.dominates(slow_costly)
        assert not fast_cheap.dominates(slow_cheap)
        assert not slow_cheap.dominates(fast_cheap)
        assert not fast_cheap.dominates(fast_cheap)

    def test_frontier_extraction(self):
        from repro.experiments.nb_frontier import FrontierPoint, NBFrontierResult

        pts = [
            FrontierPoint(5, "NB2.2", 1.0, 10.0),
            FrontierPoint(1, "NB2.2", 2.0, 20.0),  # dominated
            FrontierPoint(1, "NB1.1", 2.0, 5.0),
        ]
        result = NBFrontierResult(points={"x": pts})
        frontier = result.frontier("x")
        assert len(frontier) == 2
        assert frontier[0].time_s == 1.0  # fastest first

    def test_metrics(self):
        from repro.experiments.nb_frontier import FrontierPoint, NBFrontierResult

        pts = [
            FrontierPoint(5, "NB2.2", 1.0, 20.0),
            FrontierPoint(1, "NB2.2", 2.0, 10.0),  # stock baseline
            FrontierPoint(5, "NB1.1", 1.2, 10.2),  # fast at similar energy
            FrontierPoint(1, "NB1.1", 2.1, 7.0),   # cheapest overall
        ]
        result = NBFrontierResult(points={"x": pts})
        assert result.energy_saving("x") == pytest.approx(1 - 7.0 / 10.0)
        assert result.iso_energy_speedup("x") == pytest.approx(2.0 / 1.2)
        assert not result.intermediate_on_frontier("x")
