"""Fault injection, the telemetry filter, and the guarded controller.

The load-bearing contracts:

- a disabled :class:`FaultSpec` leaves traces bitwise identical to an
  injector-free platform (the fault-free RNG stream is untouched);
- the fault schedule is a pure function of (seed, spec, interval index);
- ground-truth sample fields are never corrupted;
- the :class:`TelemetryFilter` repairs what the injector breaks and
  flags what it cannot repair;
- the :class:`GuardedController` holds VF state on bad intervals while
  keeping its inner controller's clock in sync;
- the hardened :class:`ClusterPowerManager` quarantines unhealthy nodes
  and re-allocates their budget.
"""

import pytest

from repro.faults import (
    BAD,
    GOOD,
    REPAIRED,
    FaultInjector,
    FaultSpec,
    FilterConfig,
    GuardedController,
    TelemetryFilter,
)
from repro.faults.injection import WRAP_COUNT
from repro.dvfs.governor import DVFSController, run_controlled
from repro.hardware.events import EventVector
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import (
    SLICES_PER_INTERVAL,
    CoreAssignment,
    IntervalSample,
    Platform,
)
from repro.workloads.synthetic import make_mixed

SPEC = FX8320_SPEC


def _busy_platform(fault_spec=None, injector_seed=7, seed=123, engine="vector"):
    injector = (
        FaultInjector(fault_spec, seed=injector_seed)
        if fault_spec is not None
        else None
    )
    platform = Platform(SPEC, seed=seed, engine=engine, fault_injector=injector)
    platform.set_assignment(
        CoreAssignment.one_per_cu(SPEC, [make_mixed("t")] * SPEC.num_cus)
    )
    return platform


def _sample(index, readings, events=None, temperature=55.0):
    """A hand-built interval sample for filter unit tests."""
    vf = SPEC.vf_table.fastest
    n = SPEC.num_cores
    events = events if events is not None else [EventVector.zeros()] * n
    return IntervalSample(
        index=index,
        time=0.2 * (index + 1),
        cu_vfs=[vf] * SPEC.num_cus,
        nb_vf=SPEC.nb_vf,
        power_gating=False,
        power_samples=list(readings),
        measured_power=sum(readings) / len(readings),
        temperature=temperature,
        core_events=list(events),
        true_core_events=[EventVector.zeros()] * n,
        instructions=[0.0] * n,
        true_power=sum(readings) / len(readings),
    )


def _steady_readings(index, base=42.0):
    """Ten plausible, non-identical 20 ms readings that vary by index."""
    return [base + 0.2 * ((index + i) % 5) for i in range(SLICES_PER_INTERVAL)]


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(stale_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(stuck_duration_intervals=0)

    def test_enabled(self):
        assert not FaultSpec().enabled
        assert FaultSpec(drop_rate=0.01).enabled
        assert FaultSpec(dropout_after_interval=5).enabled

    def test_sensor_faults_scales_rates(self):
        spec = FaultSpec.sensor_faults(0.1)
        assert spec.drop_rate == 0.1 and spec.spike_rate == 0.1
        assert 0 < spec.stuck_rate < 0.1
        assert spec.enabled


class TestInjectorDeterminism:
    def test_disabled_spec_returns_sample_unchanged(self):
        injector = FaultInjector(FaultSpec())
        sample = _sample(0, _steady_readings(0))
        assert injector.apply(sample) is sample

    def test_disabled_spec_trace_bitwise_identical(self):
        for engine in ("vector", "scalar"):
            clean = _busy_platform(engine=engine)
            injected = _busy_platform(FaultSpec(), engine=engine)
            for _ in range(10):
                a, b = clean.step(), injected.step()
                assert a.power_samples == b.power_samples
                assert a.measured_power == b.measured_power
                assert a.temperature == b.temperature
                assert a.true_power == b.true_power
                assert a.core_events == b.core_events
                assert a.faults == b.faults == ()

    def test_same_seed_same_schedule(self):
        fault_spec = FaultSpec.sensor_faults(0.08)
        a = _busy_platform(fault_spec, injector_seed=3)
        b = _busy_platform(fault_spec, injector_seed=3)
        schedule_a = [a.step() for _ in range(60)]
        schedule_b = [b.step() for _ in range(60)]
        assert [s.faults for s in schedule_a] == [s.faults for s in schedule_b]
        assert [s.power_samples for s in schedule_a] == [
            s.power_samples for s in schedule_b
        ]
        assert any(s.faults for s in schedule_a)  # faults actually fired

    def test_different_seed_different_schedule(self):
        fault_spec = FaultSpec.sensor_faults(0.08)
        a = _busy_platform(fault_spec, injector_seed=3)
        b = _busy_platform(fault_spec, injector_seed=4)
        faults_a = [a.step().faults for _ in range(60)]
        faults_b = [b.step().faults for _ in range(60)]
        assert faults_a != faults_b

    def test_ground_truth_never_corrupted(self):
        fault_spec = FaultSpec.sensor_faults(0.2)
        clean = _busy_platform()
        faulty = _busy_platform(fault_spec)
        for _ in range(40):
            a, b = clean.step(), faulty.step()
            assert a.true_power == b.true_power
            assert a.instructions == b.instructions
            assert a.true_core_events == b.true_core_events

    def test_engines_corrupted_identically(self):
        fault_spec = FaultSpec.sensor_faults(0.1)
        vec = _busy_platform(fault_spec, engine="vector")
        sca = _busy_platform(fault_spec, engine="scalar")
        for _ in range(20):
            a, b = vec.step(), sca.step()
            assert a.faults == b.faults

    def test_dropout_goes_permanently_stale(self):
        fault_spec = FaultSpec(dropout_after_interval=5)
        platform = _busy_platform(fault_spec)
        samples = [platform.step() for _ in range(12)]
        for sample in samples[:5]:
            assert sample.faults == ()
        for sample in samples[5:]:
            assert sample.faults == ("stale",)
        frozen = samples[5]
        for sample in samples[6:]:
            assert sample.power_samples == frozen.power_samples
            assert sample.measured_power == frozen.measured_power


class TestTelemetryFilter:
    def _warmed(self, config=None, n=6):
        filt = TelemetryFilter(SPEC, config)
        for i in range(n):
            verdict = filt.ingest(_sample(i, _steady_readings(i)))
            assert verdict.quality == GOOD
        return filt, n

    def test_clean_stream_is_good(self):
        filt, _ = self._warmed()
        assert filt.quality_counts[GOOD] > 0
        assert filt.quality_counts[REPAIRED] == 0
        assert filt.quality_counts[BAD] == 0

    def test_dropped_readings_repaired(self):
        filt, n = self._warmed()
        readings = _steady_readings(n)
        readings[2] = 0.0
        readings[7] = 0.0
        verdict = filt.ingest(_sample(n, readings))
        assert verdict.quality == REPAIRED
        assert "drop" in verdict.issues
        assert abs(verdict.power - 42.4) < 1.0  # near the clean mean

    def test_spike_rejected(self):
        filt, n = self._warmed()
        readings = _steady_readings(n)
        readings[4] += 150.0
        verdict = filt.ingest(_sample(n, readings))
        assert verdict.quality == REPAIRED
        assert "spike" in verdict.issues
        assert verdict.power < 50.0

    def test_stuck_interval_is_bad_with_last_good_power(self):
        filt, n = self._warmed()
        last_good = filt.ingest(_sample(n, _steady_readings(n))).power
        verdict = filt.ingest(_sample(n + 1, [37.5] * SLICES_PER_INTERVAL))
        assert verdict.quality == BAD
        assert "stuck" in verdict.issues
        assert verdict.power == last_good

    def test_stale_redelivery_is_bad(self):
        filt, n = self._warmed()
        sample = _sample(n, _steady_readings(n))
        assert filt.ingest(sample).quality == GOOD
        redelivered = _sample(n + 1, _steady_readings(n))
        verdict = filt.ingest(redelivered)
        assert verdict.quality == BAD
        assert "stale" in verdict.issues

    def test_wrapped_counters_replaced_with_last_good(self):
        filt, n = self._warmed()
        good_events = [
            EventVector([1e7] * 12) for _ in range(SPEC.num_cores)
        ]
        filt.ingest(_sample(n, _steady_readings(n), events=good_events))
        wrapped = [vec + EventVector([WRAP_COUNT] * 12) for vec in good_events]
        verdict = filt.ingest(
            _sample(n + 1, _steady_readings(n + 1), events=wrapped)
        )
        assert verdict.quality == REPAIRED
        assert "counters" in verdict.issues
        assert verdict.sample.core_events[0] == good_events[0]

    def test_all_readings_lost_falls_back(self):
        filt, n = self._warmed()
        last_good = filt._last_good_power
        verdict = filt.ingest(_sample(n, [0.0] * SLICES_PER_INTERVAL))
        assert verdict.quality == BAD
        assert verdict.power == last_good

    def test_window_gate_repairs_interval_outlier(self):
        filt, n = self._warmed()
        # Every reading doubled and consistent: passes in-interval checks,
        # caught only by the median-of-window gate.
        readings = [r * 2.6 for r in _steady_readings(n)]
        verdict = filt.ingest(_sample(n, readings))
        assert verdict.quality == REPAIRED
        assert "outlier" in verdict.issues
        assert verdict.power < 50.0

    def test_window_config_validated(self):
        with pytest.raises(ValueError):
            TelemetryFilter(SPEC, FilterConfig(window=2))


class _ScriptedController(DVFSController):
    """Cycles through VF states; counts calls to expose clock skew."""

    def __init__(self):
        self.calls = 0

    def reset(self):
        self.calls = 0

    def decide(self, sample):
        self.calls += 1
        table = SPEC.vf_table
        vf = table.by_index((self.calls % len(table)) + 1)
        return [vf] * SPEC.num_cus


class TestGuardedController:
    def test_clean_stream_passes_through(self):
        inner = _ScriptedController()
        guarded = GuardedController(inner, SPEC)
        platform = _busy_platform()
        run = run_controlled(platform, guarded, 8)
        assert guarded.holds == 0
        assert inner.calls == 8
        assert len(run.decisions) == 8

    def test_bad_interval_holds_previous_decision(self):
        inner = _ScriptedController()
        guarded = GuardedController(inner, SPEC)
        guarded.reset()
        for i in range(6):
            good = guarded.decide(_sample(i, _steady_readings(i)))
        held = list(good)
        bad = guarded.decide(_sample(6, [37.5] * SLICES_PER_INTERVAL))
        assert guarded.holds == 1
        assert list(bad) == held
        # The inner controller still saw every interval (clock in sync).
        assert inner.calls == 7

    def test_recovery_resumes_inner_decisions(self):
        inner = _ScriptedController()
        guarded = GuardedController(inner, SPEC)
        guarded.reset()
        for i in range(6):
            guarded.decide(_sample(i, _steady_readings(i)))
        guarded.decide(_sample(6, [37.5] * SLICES_PER_INTERVAL))
        recovered = guarded.decide(_sample(7, _steady_readings(7)))
        fresh = _ScriptedController()
        for _ in range(8):
            expected = fresh.decide(None)
        assert list(recovered) == list(expected)


class TestHardenedFleet:
    def test_make_fleet_attaches_injectors(self, tiny_registry):
        from repro.fleet import make_fleet

        fleet = make_fleet(
            [SPEC] * 3,
            tiny_registry,
            fault_specs=[None, FaultSpec.sensor_faults(0.05)],
        )
        injectors = [n.platform.fault_injector for n in fleet.nodes]
        assert injectors[0] is None
        assert injectors[1] is not None
        assert injectors[2] is None  # cycled back to the clean spec

    def test_dropout_node_quarantined_and_budget_reallocated(
        self, tiny_registry
    ):
        from repro.fleet import ClusterPowerManager, make_fleet

        fault_specs = [None, None, FaultSpec(dropout_after_interval=4)]
        fleet = make_fleet([SPEC] * 3, tiny_registry, fault_specs=fault_specs)
        manager = ClusterPowerManager(
            fleet, 210.0, policy="waterfill", harden=True, unhealthy_after=2
        )
        run = manager.run(12)
        assert len(run.node_healthy) == 12
        # The faulty node ends up flagged unhealthy...
        assert run.node_healthy[-1][2] is False
        # ... pinned to its slowest VF state ...
        slowest = SPEC.vf_table.slowest
        assert all(
            vf.index == slowest.index
            for vf in fleet.nodes[2].platform.cu_vfs
        )
        # ... while the healthy nodes stay healthy and keep the budget.
        assert run.node_healthy[-1][0] is True
        assert run.node_healthy[-1][1] is True
        final_shares = run.shares[-1]
        assert final_shares[0] > final_shares[2]
        assert run.node_quality[-1][2] == BAD

    def test_permanent_dropout_never_readmitted(self, tiny_registry):
        """Quarantine must beat the last-good fallback, permanently.

        A dropped-out node's injector redelivers a frozen payload
        forever.  The telemetry filter's last-good repair must not turn
        that stale stream back into "good" intervals: once the bad
        streak trips quarantine, the node has to stay quarantined for
        the rest of the run, and the fleet ledger must not keep
        accepting rows priced against the stale readings.
        """
        from repro.fleet import ClusterPowerManager, make_fleet
        from repro.obs.events import EventLog
        from repro.obs.ledger import PredictionLedger

        fault_specs = [None, FaultSpec(dropout_after_interval=3)]
        fleet = make_fleet([SPEC] * 2, tiny_registry, fault_specs=fault_specs)
        events = EventLog()
        ledger = PredictionLedger(events=events)
        manager = ClusterPowerManager(
            fleet,
            140.0,
            policy="waterfill",
            harden=True,
            unhealthy_after=2,
            events=events,
            ledger=ledger,
        )
        run = manager.run(30)

        # Once flagged unhealthy, never re-admitted.
        healthy = [h[1] for h in run.node_healthy]
        first_bad = healthy.index(False)
        assert all(h is False for h in healthy[first_bad:])
        # Every post-dropout verdict stays BAD: the frozen payload must
        # not be laundered back to GOOD/REPAIRED by the last-good repair.
        qualities = [q[1] for q in run.node_quality]
        first_bad_quality = qualities.index(BAD)
        assert all(q == BAD for q in qualities[first_bad_quality:])
        # The event stream agrees: one quarantine_enter, no exit.
        enters = events.of_type("quarantine_enter")
        assert [e["node"] for e in enters] == ["node01"]
        assert events.of_type("quarantine_exit") == []
        # The ledger stopped accepting rows for the dead node once its
        # stream went bad; the healthy node kept recording all along.
        summary = ledger.node_summary()
        assert summary["node00"]["records"] > summary["node01"]["records"]
        assert summary["node01"]["records"] <= first_bad_quality + 1

    def test_hardened_clean_fleet_matches_unhardened(self, tiny_registry):
        """With no faults the hardened manager makes the same decisions."""
        from repro.fleet import ClusterPowerManager, make_fleet

        runs = {}
        for harden in (False, True):
            fleet = make_fleet([SPEC] * 2, tiny_registry)
            manager = ClusterPowerManager(fleet, 140.0, harden=harden)
            runs[harden] = manager.run(8)
        assert runs[False].node_powers == runs[True].node_powers
        assert runs[False].shares == runs[True].shares
