"""Batched-vs-per-node equivalence for the fleet struct-of-arrays kernel.

The fleet kernel's contract is not "close": every layer -- stepping
(:class:`~repro.fleet.engine.FleetEngine`), filtering
(:class:`~repro.faults.filtering.BatchTelemetryFilter`), ledger
accounting (:meth:`~repro.obs.ledger.PredictionLedger.record_many`),
capper pricing (:class:`~repro.core.ppep.MixedPricer`), and the batched
:class:`~repro.fleet.cluster_cap.ClusterPowerManager` loop -- must
reproduce the per-node path bit for bit, the same way PR 2 proved
``VectorEngine`` against the scalar engine.  These tests run mixed-SKU
rosters with ~5% fault rates, drive quarantine enter/exit, and swap
checkpoints across modes mid-run.
"""

import random

import numpy as np
import pytest

from repro.faults.filtering import BatchTelemetryFilter, TelemetryFilter
from repro.faults.injection import FaultSpec
from repro.fleet.cluster_cap import ClusterPowerManager
from repro.fleet.simulator import make_fleet
from repro.hardware.microarch import FX8320_SPEC, PHENOM_II_SPEC
from repro.obs.events import EventLog
from repro.obs.ledger import PredictionLedger

MIXED_SPECS = [
    FX8320_SPEC,
    PHENOM_II_SPEC,
    FX8320_SPEC,
    PHENOM_II_SPEC,
    FX8320_SPEC,
    FX8320_SPEC,
]

#: ~5% fault rates on some nodes, one clean node, one dropout node --
#: exercises stale/spike/stuck repair, BAD streaks, and quarantine.
FAULTS = [
    FaultSpec(
        drop_rate=0.05,
        spike_rate=0.05,
        stuck_rate=0.03,
        counter_wrap_rate=0.04,
        stale_rate=0.05,
    ),
    None,
    FaultSpec(dropout_after_interval=12),
]


def _sample_fields(sample):
    return (
        sample.index,
        sample.time,
        list(sample.power_samples),
        sample.measured_power,
        sample.temperature,
        [vec.as_list() for vec in sample.core_events],
        [vec.as_list() for vec in sample.true_core_events],
        list(sample.instructions),
        sample.true_power,
        sample.nb_utilisation,
        sample.interval_s,
    )


class TestFleetEngineStepping:
    def test_batched_step_bit_identical(self, tiny_registry):
        batched = make_fleet(
            MIXED_SPECS, tiny_registry, fault_specs=FAULTS, batched=True
        )
        scalar = make_fleet(
            MIXED_SPECS, tiny_registry, fault_specs=FAULTS, batched=False
        )
        for _ in range(30):
            rows_a = batched.step()
            rows_b = scalar.step()
            for a, b in zip(rows_a, rows_b):
                assert _sample_fields(a) == _sample_fields(b)
        # The kernel actually batched work (whole-interval-steady nodes
        # exist in this workload mix); ineligible intervals fall back.
        assert batched._engine is not None

    def test_batched_flag_off_has_no_engine(self, tiny_registry):
        fleet = make_fleet(MIXED_SPECS[:2], tiny_registry, batched=False)
        assert fleet._engine is None


class TestMixedPricer:
    def test_price_matches_predict_mixed(self, tiny_registry):
        fleet = make_fleet([FX8320_SPEC], tiny_registry, batched=False)
        node = fleet.nodes[0]
        sample = node.platform.step()
        states = node.ppep.core_states(sample)
        pricer = node.ppep.mixed_pricer(
            states, sample.temperature, sample.power_gating
        )
        table = node.spec.vf_table
        rng = random.Random(11)
        for _ in range(60):
            targets = [
                table.by_index(rng.randint(1, len(table)))
                for _ in range(node.spec.num_cus)
            ]
            assert pricer.price(targets) == node.ppep.predict_mixed(
                states, sample.temperature, targets, sample.power_gating
            )

    def test_capper_pricer_decisions_identical(self, tiny_registry):
        from repro.dvfs.power_capping import ExternalBudget, PPEPPowerCapper

        fleet = make_fleet([FX8320_SPEC], tiny_registry, batched=False)
        node = fleet.nodes[0]
        budget_a, budget_b = ExternalBudget(60.0), ExternalBudget(60.0)
        fast = PPEPPowerCapper(node.ppep, budget_a, use_pricer=True)
        slow = PPEPPowerCapper(node.ppep, budget_b, use_pricer=False)
        for _ in range(10):
            sample = node.platform.step()
            da = [vf.index for vf in fast.decide(sample)]
            db = [vf.index for vf in slow.decide(sample)]
            assert da == db


class TestBatchTelemetryFilter:
    def test_bit_identical_verdicts_and_state(self, tiny_registry):
        fleet = make_fleet(
            MIXED_SPECS, tiny_registry, fault_specs=FAULTS, batched=False
        )
        scalar = [TelemetryFilter(n.spec) for n in fleet.nodes]
        batch = BatchTelemetryFilter([n.spec for n in fleet.nodes])
        for _ in range(40):
            samples = fleet.step()
            outs_s = [f.ingest(s) for f, s in zip(scalar, samples)]
            outs_b = batch.ingest_many(samples)
            for a, b in zip(outs_s, outs_b):
                assert a.quality == b.quality
                assert a.issues == b.issues
                assert a.power == b.power
                assert (
                    a.sample.measured_power == b.sample.measured_power
                )
                assert list(a.sample.power_samples) == list(
                    b.sample.power_samples
                )
                for ea, eb in zip(a.sample.core_events, b.sample.core_events):
                    assert ea.as_list() == eb.as_list()
        # Checkpoints interoperate: per-node dicts match field for field.
        assert batch.node_state_dicts() == [f.state_dict() for f in scalar]

    def test_scalar_checkpoint_restores_into_batch(self, tiny_registry):
        fleet = make_fleet(
            MIXED_SPECS[:3], tiny_registry, fault_specs=FAULTS, batched=False
        )
        scalar = [TelemetryFilter(n.spec) for n in fleet.nodes]
        for _ in range(15):
            samples = fleet.step()
            for f, s in zip(scalar, samples):
                f.ingest(s)
        batch = BatchTelemetryFilter([n.spec for n in fleet.nodes])
        batch.load_node_state_dicts([f.state_dict() for f in scalar])
        for _ in range(10):
            samples = fleet.step()
            outs_s = [f.ingest(s) for f, s in zip(scalar, samples)]
            outs_b = batch.ingest_many(samples)
            for a, b in zip(outs_s, outs_b):
                assert (a.quality, a.issues, a.power) == (
                    b.quality,
                    b.issues,
                    b.power,
                )


class TestRecordMany:
    def test_matches_sequential_record(self):
        rng = random.Random(3)
        nodes = ["n{:02d}".format(i) for i in range(10)]
        a, b = PredictionLedger(), PredictionLedger()
        for t in range(50):
            rows = []
            for i, node in enumerate(nodes):
                meas = 40.0 + 10 * rng.random() + (
                    15.0 if t >= 35 and i % 3 == 0 else 0.0
                )
                rows.append(
                    dict(
                        node=node,
                        interval=t,
                        vf_index=1 + (i % 4),
                        predicted_power=meas + rng.gauss(0.0, 1.5),
                        measured_power=meas,
                        interval_s=0.2,
                        quality="good",
                    )
                )
            for row in rows:
                a.record(**row)
            b.record_many(rows)
        assert a.state_dict() == b.state_dict()
        assert a.drift_flags == b.drift_flags
        assert len(a.drift_flags) > 0  # the shift actually tripped CUSUM
        for ra, rb in zip(a.records, b.records):
            assert (ra.node, ra.interval, ra.error, ra.drift) == (
                rb.node,
                rb.interval,
                rb.error,
                rb.drift,
            )

    def test_duplicate_nodes_fall_back(self):
        ledger = PredictionLedger()
        rows = [
            dict(
                node="n0",
                interval=t,
                vf_index=1,
                predicted_power=50.0,
                measured_power=49.0,
                interval_s=0.2,
            )
            for t in range(3)
        ]
        out = ledger.record_many(rows)
        assert len(out) == 3
        assert ledger._node("n0").records == 3


class TestClusterManagerBatched:
    def _build(self, registry, batched):
        fleet = make_fleet(
            MIXED_SPECS, registry, fault_specs=FAULTS, batched=batched
        )
        return ClusterPowerManager(
            fleet,
            cap_schedule=420.0,
            policy="waterfill",
            harden=True,
            ledger=PredictionLedger(),
            events=EventLog(),
            batched=batched,
        )

    def test_full_loop_bit_identical(self, tiny_registry):
        ma = self._build(tiny_registry, batched=True)
        mb = self._build(tiny_registry, batched=False)
        ra = ma.run(30)
        rb = mb.run(30)
        # Decisions, shares, verdicts, and health: bit-identical.
        assert ra.caps == rb.caps
        assert ra.shares == rb.shares
        assert ra.node_powers == rb.node_powers
        assert ra.node_instructions == rb.node_instructions
        assert ra.node_true_powers == rb.node_true_powers
        assert ra.node_quality == rb.node_quality
        assert ra.node_healthy == rb.node_healthy
        # The dropout node was actually quarantined during the run.
        assert any(not all(row) for row in ra.node_healthy)
        # All downstream state (cappers, filters, ledger stats, drift
        # verdicts, quarantine bookkeeping) agrees too.
        assert ma.state_dict() == mb.state_dict()
        assert ma.ledger.state_dict() == mb.ledger.state_dict()

    def test_cross_mode_checkpoint_swap(self, tiny_registry):
        ma = self._build(tiny_registry, batched=True)
        mb = self._build(tiny_registry, batched=False)
        ma.run(20)
        mb.run(20)
        # Both fleets are in the identical platform state (proven by the
        # test above), so the manager checkpoints can swap across modes.
        sd_a, sd_b = ma.state_dict(), mb.state_dict()
        mb.load_state_dict(sd_a)
        ma.load_state_dict(sd_b)
        ra = ma.run(12, resume=True)
        rb = mb.run(12, resume=True)
        assert ra.shares == rb.shares
        assert ra.node_quality == rb.node_quality
        assert ra.node_healthy == rb.node_healthy
        assert ma.state_dict() == mb.state_dict()


class TestShardPipelineBatched:
    def test_batched_flag_decisions_identical(self, tiny_registry):
        from repro.serve.shard import ShardPipeline

        fleet = make_fleet(
            [FX8320_SPEC] * 3,
            tiny_registry,
            fault_specs=FAULTS,
            batched=False,
        )
        names = [n.name for n in fleet.nodes]
        ppep = fleet.nodes[0].ppep

        def build(batched):
            return ShardPipeline(
                sku="fx8320",
                spec=FX8320_SPEC,
                ppep=ppep,
                node_names=names,
                budget_w=180.0,
                batched=batched,
            )

        fast, slow = build(True), build(False)
        for _ in range(15):
            samples = fleet.step()
            for name, sample in zip(names, samples):
                oa = fast.process(name, sample)
                ob = slow.process(name, sample)
                assert oa == ob
        assert fast.state_dict() == slow.state_dict()
