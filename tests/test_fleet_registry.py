"""Unit tests for the per-SKU trained-model registry."""

import dataclasses

import numpy as np
import pytest

from repro.fleet import ModelRegistry, make_fleet, spec_fingerprint
from repro.hardware.microarch import FX8320_SPEC, PHENOM_II_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.workloads.suites import spec_combinations, spec_program

TINY = dict(
    combos=spec_combinations()[:2], bench_intervals=3, cool_intervals=15
)


def _all_vf_powers(ppep, sample):
    """Predicted chip power per VF state -- the model's signature."""
    states = ppep.core_states(sample)
    return np.array([
        ppep.predict_at(states, sample.temperature, vf, sample.power_gating).chip_power
        for vf in ppep.spec.vf_table.descending()
    ])


def _stepped_sample(spec, seed=77):
    platform = Platform(spec, seed=seed, power_gating=spec.supports_power_gating)
    platform.set_assignment(
        CoreAssignment.one_per_cu(spec, [spec_program("429")])
    )
    return platform.step()


class TestFingerprint:
    def test_stable_across_calls(self):
        assert spec_fingerprint(FX8320_SPEC) == spec_fingerprint(FX8320_SPEC)

    def test_distinguishes_skus(self):
        assert spec_fingerprint(FX8320_SPEC) != spec_fingerprint(PHENOM_II_SPEC)

    def test_any_field_change_changes_digest(self):
        tweaked = dataclasses.replace(
            FX8320_SPEC, ambient_temperature=FX8320_SPEC.ambient_temperature + 1.0
        )
        assert spec_fingerprint(tweaked) != spec_fingerprint(FX8320_SPEC)


class TestCache:
    def test_hit_on_identical_spec(self):
        registry = ModelRegistry(**TINY)
        first = registry.get(FX8320_SPEC)
        second = registry.get(FX8320_SPEC)
        assert first is second
        assert registry.trains == 1
        assert len(registry) == 1
        assert FX8320_SPEC in registry

    def test_miss_on_differing_spec(self, tiny_registry):
        key_fx = tiny_registry.key_for(FX8320_SPEC)
        key_ph = tiny_registry.key_for(PHENOM_II_SPEC)
        assert key_fx != key_ph

    def test_key_includes_training_config(self):
        a = ModelRegistry(**TINY)
        b = ModelRegistry(
            combos=spec_combinations()[:2], bench_intervals=4, cool_intervals=15
        )
        assert a.key_for(FX8320_SPEC) != b.key_for(FX8320_SPEC)

    def test_empty_combos_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(combos=[])

    def test_mixed_sku_fleet_trains_each_spec_once(self):
        registry = ModelRegistry(**TINY)
        fleet = make_fleet(
            [FX8320_SPEC, FX8320_SPEC, PHENOM_II_SPEC, FX8320_SPEC], registry
        )
        assert registry.trains == 2
        assert fleet.num_model_groups == 2
        # The three FX nodes share one model object.
        fx_models = {
            id(node.ppep) for node in fleet.nodes
            if node.spec.name == FX8320_SPEC.name
        }
        assert len(fx_models) == 1


class TestPersistence:
    def test_round_trip_predictions_identical(self, tmp_path):
        cache = str(tmp_path / "models")
        warm = ModelRegistry(cache_dir=cache, **TINY)
        trained = warm.get(FX8320_SPEC)
        assert warm.trains == 1

        cold = ModelRegistry(cache_dir=cache, **TINY)
        loaded = cold.get(FX8320_SPEC)
        assert cold.trains == 0  # came from disk, not a retrain

        sample = _stepped_sample(FX8320_SPEC)
        np.testing.assert_allclose(
            _all_vf_powers(loaded, sample), _all_vf_powers(trained, sample)
        )

    def test_no_cache_dir_means_no_files(self, tmp_path):
        registry = ModelRegistry(**TINY)
        registry.get(FX8320_SPEC)
        assert list(tmp_path.iterdir()) == []
