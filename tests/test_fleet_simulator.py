"""Unit and equivalence tests for the fleet simulator and batched path."""

import numpy as np
import pytest

from repro.fleet import FleetNode, FleetSimulator, make_fleet
from repro.hardware.microarch import FX8320_SPEC, PHENOM_II_SPEC
from repro.hardware.platform import Platform


@pytest.fixture(scope="module")
def fleet(tiny_registry):
    """A 4-node mixed-SKU fleet stepped a few intervals into its run."""
    built = make_fleet(
        [FX8320_SPEC, PHENOM_II_SPEC, FX8320_SPEC, FX8320_SPEC], tiny_registry
    )
    for _ in range(2):
        built.step()
    return built


class TestFleetConstruction:
    def test_node_spec_must_match_model(self, tiny_registry):
        ppep = tiny_registry.get(FX8320_SPEC)
        platform = Platform(PHENOM_II_SPEC, seed=1)
        with pytest.raises(ValueError):
            FleetNode("bad", platform, ppep)

    def test_names_must_be_unique(self, tiny_registry):
        ppep = tiny_registry.get(FX8320_SPEC)
        nodes = [
            FleetNode("dup", Platform(FX8320_SPEC, seed=i), ppep)
            for i in range(2)
        ]
        with pytest.raises(ValueError):
            FleetSimulator(nodes)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetSimulator([])

    def test_grouping_by_shared_model(self, fleet):
        assert len(fleet) == 4
        assert fleet.num_model_groups == 2  # FX model + Phenom model

    def test_busy_cus_limits_load(self, tiny_registry):
        lazy = make_fleet([FX8320_SPEC, FX8320_SPEC], tiny_registry,
                          busy_cus=[1, 4])
        samples = lazy.step()
        pred = lazy.predict(samples)
        # One busy CU demands clearly less power than four.
        assert pred.demand[0] < pred.demand[1]


class TestStepping:
    def test_step_is_synchronized(self, fleet):
        samples = fleet.step()
        assert len(samples) == len(fleet)
        assert len({s.index for s in samples}) == 1
        assert len({s.time for s in samples}) == 1

    def test_run_collects_intervals(self, fleet):
        history = fleet.run(3)
        assert len(history) == 3
        assert all(len(row) == len(fleet) for row in history)

    def test_run_validates_intervals(self, fleet):
        with pytest.raises(ValueError):
            fleet.run(0)


class TestBatchedPrediction:
    def test_alignment_enforced(self, fleet):
        samples = fleet.step()
        with pytest.raises(ValueError):
            fleet.predict(samples[:-1])

    def test_matches_scalar_pipeline(self, fleet):
        """The batched hot path must price every (node, VF) pair exactly
        as the scalar Figure 5 pipeline does."""
        samples = fleet.step()
        pred = fleet.predict(samples)
        for i, (node, sample) in enumerate(zip(fleet.nodes, samples)):
            snapshot = node.ppep.analyze(sample)
            for col, vf_index in enumerate(pred.vf_indices[i]):
                scalar = snapshot.predictions[int(vf_index)]
                assert pred.chip_power[i][col] == pytest.approx(
                    scalar.chip_power, rel=1e-9
                )
                assert pred.instructions_per_second[i][col] == pytest.approx(
                    scalar.instructions_per_second, rel=1e-9
                )

    def test_ragged_vf_axes_across_skus(self, fleet):
        samples = fleet.step()
        pred = fleet.predict(samples)
        by_name = dict(zip(pred.names, pred.vf_indices))
        assert len(by_name["node00"]) == len(FX8320_SPEC.vf_table)
        assert len(by_name["node01"]) == len(PHENOM_II_SPEC.vf_table)
        # Fastest VF first everywhere.
        for indices in pred.vf_indices:
            assert list(indices) == sorted(indices, reverse=True)

    def test_demand_exceeds_floor(self, fleet):
        samples = fleet.step()
        pred = fleet.predict(samples)
        assert (pred.demand > pred.floor).all()

    def test_analyze_builds_full_snapshots(self, fleet):
        samples = fleet.step()
        snapshots = fleet.analyze(samples)
        assert len(snapshots) == len(fleet)
        for node, sample, snap in zip(fleet.nodes, samples, snapshots):
            reference = node.ppep.analyze(sample)
            assert snap.measured_power == sample.measured_power
            assert set(snap.predictions) == set(reference.predictions)
            for vf_index, scalar in reference.predictions.items():
                batched = snap.predictions[vf_index]
                assert batched.chip_power == pytest.approx(
                    scalar.chip_power, rel=1e-9
                )
                assert batched.core_cpis == pytest.approx(
                    scalar.core_cpis, rel=1e-9
                )
            assert snap.current_estimate == pytest.approx(
                reference.current_estimate, rel=1e-9
            )
