"""Unit tests for the fixed-width result renderers."""

import pytest

from repro.analysis.formatting import (
    format_percent,
    format_series,
    format_table,
)


class TestFormatPercent:
    def test_default_digits(self):
        assert format_percent(0.046) == "4.6%"

    def test_custom_digits(self):
        assert format_percent(0.04567, digits=2) == "4.57%"

    def test_large_values(self):
        assert format_percent(1.5) == "150.0%"


class TestFormatTable:
    def test_header_and_rows(self):
        text = format_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "22" in lines[-1]

    def test_title_gets_rule(self):
        text = format_table(["h"], [["v"]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}

    def test_float_precision(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_columns_align(self):
        text = format_table(["col"], [["a"], ["bbbb"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_plain(self):
        text = format_series("s", {"x": 1.0, "y": 2.5})
        assert text.startswith("s: ")
        assert "x=1.00" in text and "y=2.50" in text

    def test_percent_mode(self):
        text = format_series("s", {"x": 0.25}, percent=True)
        assert "x=25.0%" in text
