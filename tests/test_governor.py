"""Unit tests for the DVFS controller loop."""

import pytest

from repro.dvfs.governor import ControlledRun, DVFSController, run_controlled
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import CoreAssignment, INTERVAL_S, Platform
from repro.workloads.synthetic import make_cpu_bound


class RecordingController(DVFSController):
    """Applies a fixed VF and records what it observed."""

    def __init__(self, vf, num_cus):
        self.vf = vf
        self.num_cus = num_cus
        self.observed = []
        self.resets = 0

    def reset(self):
        self.resets += 1

    def decide(self, sample):
        self.observed.append(sample.measured_power)
        return [self.vf] * self.num_cus


class BadController(DVFSController):
    def decide(self, sample):
        return [FX8320_SPEC.vf_table.fastest]  # wrong width


@pytest.fixture
def loaded_platform():
    p = Platform(FX8320_SPEC, seed=11, initial_temperature=318.0)
    p.set_assignment(CoreAssignment.packed([make_cpu_bound("gov")]))
    return p


class TestRunControlled:
    def test_collects_samples_and_decisions(self, loaded_platform):
        ctrl = RecordingController(FX8320_SPEC.vf_table.slowest, 4)
        run = run_controlled(loaded_platform, ctrl, 5)
        assert len(run.samples) == 5
        assert len(run.decisions) == 5
        assert ctrl.resets == 1

    def test_decision_applies_next_interval(self, loaded_platform):
        # Controller demands VF1; the first interval still runs at the
        # initial VF5, later intervals at VF1.
        ctrl = RecordingController(FX8320_SPEC.vf_table.slowest, 4)
        run = run_controlled(
            loaded_platform, ctrl, 4, initial_vf=FX8320_SPEC.vf_table.fastest
        )
        assert run.samples[0].cu_vfs[0].index == 5
        assert run.samples[2].cu_vfs[0].index == 1

    def test_wrong_decision_width_rejected(self, loaded_platform):
        with pytest.raises(ValueError):
            run_controlled(loaded_platform, BadController(), 2)

    def test_nonpositive_intervals_rejected(self, loaded_platform):
        ctrl = RecordingController(FX8320_SPEC.vf_table.slowest, 4)
        with pytest.raises(ValueError):
            run_controlled(loaded_platform, ctrl, 0)

    def test_run_accounting(self, loaded_platform):
        ctrl = RecordingController(FX8320_SPEC.vf_table.fastest, 4)
        run = run_controlled(loaded_platform, ctrl, 3)
        assert run.total_energy() == pytest.approx(
            sum(run.measured_powers) * INTERVAL_S
        )
        assert run.total_instructions() > 0
