"""Unit tests for the Green Governors baseline model."""

import pytest

from repro.dvfs.green_governors import (
    GreenGovernorsModel,
    fit_green_governors,
)
from repro.hardware.platform import INTERVAL_S
from repro.hardware.vfstates import FX8320_VF_TABLE

VF5 = FX8320_VF_TABLE.by_index(5)
VF1 = FX8320_VF_TABLE.by_index(1)

STATIC = {5: 40.0, 4: 30.0, 3: 22.0, 2: 17.0, 1: 13.0}


def training_rows(k0=1.0, k1=8.0):
    rows = []
    for ipc in (0.5, 1.0, 2.0, 4.0):
        ceff = k0 + k1 * ipc
        power = STATIC[5] + ceff * VF5.voltage ** 2 * VF5.frequency_ghz
        rows.append((ipc, power, VF5))
    return rows


class TestFit:
    def test_recovers_ceff_line(self):
        model = fit_green_governors(STATIC, training_rows(k0=1.5, k1=7.0))
        assert model.k0 == pytest.approx(1.5, abs=1e-9)
        assert model.k1 == pytest.approx(7.0, abs=1e-9)

    def test_needs_rows(self):
        with pytest.raises(ValueError):
            fit_green_governors(STATIC, training_rows()[:1])

    def test_needs_static_table(self):
        with pytest.raises(ValueError):
            fit_green_governors({}, training_rows())


class TestEstimate:
    @pytest.fixture
    def model(self):
        return fit_green_governors(STATIC, training_rows())

    def test_reproduces_training_points(self, model):
        for ipc, power, vf in training_rows():
            assert model.estimate_power(ipc, vf) == pytest.approx(power)

    def test_cv2f_scaling_across_states(self, model):
        # Same activity priced at VF1: static from the table, dynamic
        # scaled by V^2 f.
        ipc = 2.0
        ceff = model.effective_capacitance(ipc)
        expected = STATIC[1] + ceff * VF1.voltage ** 2 * VF1.frequency_ghz
        assert model.estimate_power(ipc, VF1) == pytest.approx(expected)

    def test_ceff_clamped_nonnegative(self, model):
        assert model.effective_capacitance(-100.0) == 0.0

    def test_energy_is_power_times_interval(self, model):
        assert model.estimate_energy(1.0, VF5) == pytest.approx(
            model.estimate_power(1.0, VF5) * INTERVAL_S
        )

    def test_unknown_vf_rejected(self, model):
        from repro.hardware.vfstates import VFState

        with pytest.raises(KeyError):
            model.estimate_power(1.0, VFState(9, 1.0, 1.0))

    def test_no_temperature_term(self):
        # The GG model is temperature-blind by design: estimates depend
        # only on (IPC, VF), an accuracy limitation vs PPEP.
        model = fit_green_governors(STATIC, training_rows())
        assert model.estimate_power(1.0, VF5) == model.estimate_power(1.0, VF5)
