"""Unit tests for the Eq. 2 idle power model."""

import numpy as np
import pytest

from repro.core.idle_power import (
    IdlePowerModel,
    fit_cooling_trace,
    fit_idle_power_model,
    validate_idle_model,
)


def synthetic_traces(noise=0.0, seed=0):
    """Cooling traces from a known linear ground truth:
    P(V, T) = (0.1 + 0.2 V) * T + (5 V^2 - 3)."""
    rng = np.random.default_rng(seed)
    traces = {}
    for voltage in (0.9, 1.0, 1.1, 1.25, 1.32):
        temps = np.linspace(310.0, 340.0, 40)
        powers = (0.1 + 0.2 * voltage) * temps + (5 * voltage ** 2 - 3)
        powers = powers + rng.normal(0.0, noise, temps.size)
        traces[voltage] = (list(temps), list(powers))
    return traces


class TestFitting:
    def test_cooling_trace_linear_fit(self):
        slope, intercept = fit_cooling_trace([300.0, 320.0], [30.0, 34.0])
        assert slope == pytest.approx(0.2)
        assert intercept == pytest.approx(-30.0)

    def test_recovers_known_model(self):
        model = fit_idle_power_model(synthetic_traces())
        for voltage in (0.95, 1.1, 1.3):
            for temp in (315.0, 330.0):
                expected = (0.1 + 0.2 * voltage) * temp + (5 * voltage ** 2 - 3)
                assert model.predict(voltage, temp) == pytest.approx(
                    expected, rel=0.01
                )

    def test_robust_to_measurement_noise(self):
        model = fit_idle_power_model(synthetic_traces(noise=0.5, seed=3))
        expected = (0.1 + 0.2 * 1.1) * 325.0 + (5 * 1.1 ** 2 - 3)
        assert model.predict(1.1, 325.0) == pytest.approx(expected, rel=0.03)

    def test_degree_shrinks_with_few_voltages(self):
        traces = synthetic_traces()
        two = {v: traces[v] for v in list(traces)[:2]}
        model = fit_idle_power_model(two)
        assert model.w_idle1.degree == 1

    def test_needs_two_voltages(self):
        traces = synthetic_traces()
        one = {1.0: traces[1.0]}
        with pytest.raises(ValueError):
            fit_idle_power_model(one)


class TestPrediction:
    @pytest.fixture
    def model(self):
        return fit_idle_power_model(synthetic_traces())

    def test_temperature_slope(self, model):
        assert model.temperature_slope(1.0) == pytest.approx(0.3, rel=0.02)

    def test_power_increases_with_temperature(self, model):
        assert model.predict(1.1, 340.0) > model.predict(1.1, 310.0)

    def test_power_increases_with_voltage(self, model):
        assert model.predict(1.32, 325.0) > model.predict(0.9, 325.0)

    def test_validation_inputs(self, model):
        with pytest.raises(ValueError):
            model.predict(0.0, 300.0)
        with pytest.raises(ValueError):
            model.predict(1.0, -1.0)

    def test_validate_idle_model_zero_on_truth(self, model):
        temps = [312.0, 320.0, 335.0]
        powers = [(0.1 + 0.2 * 1.0) * t + 2.0 for t in temps]
        aae = validate_idle_model(model, 1.0, temps, powers)
        assert aae < 0.01

    def test_validate_alignment_checked(self, model):
        with pytest.raises(ValueError):
            validate_idle_model(model, 1.0, [300.0], [1.0, 2.0])
