"""Integration tests: the per-figure experiments reproduce the paper's
qualitative shapes at quick scale.

Each test runs one experiment module against the shared quick context
and checks the headline claims (who wins, directions, orderings) rather
than absolute numbers.
"""

import pytest

from repro.experiments import (
    cpi_validation,
    fig01_idle_thermal,
    fig04_power_gating,
    fig07_power_capping,
    fig08_background_energy,
    fig09_background_edp,
    fig10_nb_share,
    fig11_nb_scaling,
    observations,
    table1_events,
)


class TestTable1:
    def test_structure(self, quick_ctx):
        result = table1_events.run(quick_ctx)
        assert result.num_events == 12
        assert result.num_power_events == 9
        assert result.num_performance_events == 3
        assert result.groups_fit_hardware
        assert "PMCx069" in table1_events.format_report(result, quick_ctx)


class TestCPIValidation:
    def test_errors_in_paper_band(self, quick_ctx):
        result = cpi_validation.run(quick_ctx)
        # Paper: 3.4% down / 3.0% up; allow slack on the quick subset.
        assert result.down_average < 0.08
        assert result.up_average < 0.08
        assert len(result.down_errors) == len(result.up_errors)
        report = cpi_validation.format_report(result, quick_ctx)
        assert "VF5" in report


class TestObservations:
    def test_obs1_deltas_small(self, quick_ctx):
        result = observations.run(quick_ctx)
        assert result.event_deltas
        for event, delta in result.event_deltas.items():
            assert delta < 0.10, event

    def test_obs2_gap_small(self, quick_ctx):
        result = observations.run(quick_ctx)
        assert result.gap_delta < 0.05  # paper: 1.7%


class TestFig01:
    def test_heating_cooling_shape(self, quick_ctx):
        result = fig01_idle_thermal.run(quick_ctx, heat_intervals=200,
                                        cool_intervals=200)
        assert result.peak_temperature > result.final_temperature + 5.0
        assert result.power_drop > 2.0
        assert result.cooling_linearity > 0.95  # justifies Eq. 2


class TestFig04:
    def test_decomposition_positive_and_vf_ordered(self, quick_ctx):
        result = fig04_power_gating.run(quick_ctx)
        cu_powers = {}
        for index, d in result.decompositions.items():
            assert d.p_cu > 0
            assert d.p_base > 0
            cu_powers[index] = d.p_cu
        assert cu_powers[5] > cu_powers[1]  # CU idle power shrinks with V

    def test_four_cu_bars_coincide(self, quick_ctx):
        result = fig04_power_gating.run(quick_ctx)
        pg_off, pg_on = result.sweeps[5]
        assert pg_on[-1] == pytest.approx(pg_off[-1], rel=0.05)
        assert pg_on[0] < pg_off[0] / 3  # idle chip gates almost everything


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self, quick_ctx):
        return fig07_power_capping.run(quick_ctx)

    def test_ppep_settles_almost_immediately(self, result):
        # Paper: one interval; prediction noise may cost one extra.
        assert result.ppep.worst_settle <= 2
        assert result.ppep.mean_settle <= 1.5

    def test_iterative_needs_many_intervals(self, result):
        assert result.iterative.worst_settle >= 4

    def test_ppep_violates_less(self, result):
        assert result.ppep.violation_rate < result.iterative.violation_rate

    def test_responsiveness_ratio(self, result):
        assert result.responsiveness_ratio >= 4  # paper: 14x


class TestBackgroundSweepFigures:
    @pytest.fixture(scope="class")
    def fig8(self, quick_ctx):
        return fig08_background_energy.run(quick_ctx)

    def test_lowest_vf_minimises_energy(self, fig8, quick_ctx):
        for program in ("433", "458"):
            for n in (1, 4):
                series = fig8.series(program, n)
                lowest = min(series, key=series.get)
                assert lowest <= 2  # VF1 or VF2 (near-flat tail allowed)

    def test_memory_bound_contention_penalty(self, fig8):
        # 433 x4 per-thread energy at VF5 exceeds x1 (NB contention).
        assert fig8.series("433", 4)[5] > fig8.series("433", 1)[5]

    def test_cpu_bound_sharing_benefit(self, fig8):
        # 458 x4 per-thread energy at VF5 is below x1 (static sharing).
        assert fig8.series("458", 4)[5] < fig8.series("458", 1)[5]

    def test_edp_shift_with_instances(self, quick_ctx):
        result = fig09_background_edp.run(quick_ctx)
        # CPU-bound best-EDP state drops (or stays) as instances grow.
        assert result.best_vf[("458", 4)] <= result.best_vf[("458", 1)]
        assert result.best_vf[("458", 1)] == 5  # paper: VF5 when alone

    def test_nb_share_ordering(self, quick_ctx):
        result = fig10_nb_share.run(quick_ctx)
        mem_avg, _lo, _hi = result.stats("433")
        cpu_avg, cpu_min, _ = result.stats("458")
        assert mem_avg > cpu_avg + 0.15  # paper: 60% vs 25%
        assert cpu_min < 0.15  # paper: min 10%

    def test_nb_share_grows_at_low_vf(self, quick_ctx):
        result = fig10_nb_share.run(quick_ctx)
        for program in ("433", "458"):
            assert (
                result.ratios[(program, 1, 1)] > result.ratios[(program, 1, 5)]
            )


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self, quick_ctx):
        return fig11_nb_scaling.run(quick_ctx, validate=True)

    def test_savings_positive_everywhere(self, result):
        for outcome in result.outcomes.values():
            assert outcome.energy_saving > 0.05

    def test_average_saving_in_paper_band(self, result):
        assert 0.08 < result.average_saving < 0.35  # paper: 20.4%

    def test_some_speedup_available(self, result):
        assert result.average_speedup > 1.05  # paper: 1.37x
        assert max(o.speedup for o in result.outcomes.values()) > 1.3

    def test_whatif_matches_simulated_nb_lo(self, result):
        projected, actual = result.validation
        assert projected == pytest.approx(actual, rel=0.25)
