"""Integration tests: trained PPEP against the simulator, quick scale.

These tests exercise the full train-then-validate path on the shared
quick-scale context and assert the *shapes* the paper reports, with
generous tolerances (the quick roster is small).
"""

import numpy as np
import pytest

from repro.analysis.metrics import average_absolute_error


@pytest.fixture(scope="module")
def fold_setup(quick_ctx):
    models = quick_ctx.fold_models()
    return quick_ctx, models


class TestChipPowerValidation:
    def test_heldout_chip_error_in_band(self, fold_setup):
        ctx, models = fold_setup
        vf5 = ctx.spec.vf_table.fastest
        estimates, measured = [], []
        for model, test_combos in models:
            for combo in test_combos[:3]:
                for sample in ctx.trace(combo, vf5):
                    estimates.append(model.estimate_current(sample))
                    measured.append(sample.measured_power)
        aae = average_absolute_error(estimates, measured)
        assert aae < 0.08  # paper: 4.6% average

    def test_error_grows_toward_vf1(self, fold_setup):
        ctx, models = fold_setup
        model, test_combos = models[0]
        aae_by_vf = {}
        for vf in ctx.spec.vf_table:
            est, meas = [], []
            for combo in test_combos[:4]:
                for sample in ctx.trace(combo, vf):
                    est.append(model.estimate_current(sample))
                    meas.append(sample.measured_power)
            aae_by_vf[vf.index] = average_absolute_error(est, meas)
        assert aae_by_vf[1] > aae_by_vf[5]


class TestCrossVFPrediction:
    def test_vf5_to_vf1_average_power(self, fold_setup):
        ctx, models = fold_setup
        vf5 = ctx.spec.vf_table.fastest
        vf1 = ctx.spec.vf_table.slowest
        errors = []
        for model, test_combos in models:
            for combo in test_combos[:3]:
                src = ctx.trace(combo, vf5)
                tgt = ctx.trace(combo, vf1)
                predicted = np.mean(
                    [model.analyze(s).prediction(vf1).chip_power for s in src]
                )
                actual = tgt.average_measured_power()
                errors.append(abs(predicted - actual) / actual)
        assert np.mean(errors) < 0.15  # paper: ~6% for this pair

    def test_prediction_tracks_workload_differences(self, fold_setup):
        """Cross-VF predictions must rank workloads by power, not just
        output a per-VF constant."""
        ctx, models = fold_setup
        model, test_combos = models[0]
        if len(test_combos) < 3:
            pytest.skip("fold too small")
        vf5 = ctx.spec.vf_table.fastest
        vf2 = ctx.spec.vf_table.by_index(2)
        predicted, actual = [], []
        for combo in test_combos[:5]:
            src = ctx.trace(combo, vf5)
            tgt = ctx.trace(combo, vf2)
            predicted.append(
                np.mean([model.analyze(s).prediction(vf2).chip_power for s in src])
            )
            actual.append(tgt.average_measured_power())
        order_pred = np.argsort(predicted)
        order_act = np.argsort(actual)
        # Rank correlation: at least the extremes agree.
        assert order_pred[0] == order_act[0] or order_pred[-1] == order_act[-1]


class TestIdleModelIntegration:
    def test_idle_model_tracks_ground_truth(self, quick_ctx):
        from repro.hardware.power import GroundTruthPower

        gt = GroundTruthPower(quick_ctx.spec)
        model = quick_ctx.idle_model
        for vf in quick_ctx.spec.vf_table:
            for temp in (315.0, 330.0):
                true = gt.idle_chip_power(vf, quick_ctx.spec.nb_vf, temp)
                est = model.predict(vf.voltage, temp)
                assert est == pytest.approx(true, rel=0.12)

    def test_alpha_close_to_physical_exponent(self, quick_ctx):
        assert 1.6 < quick_ctx.alpha < 2.8

    def test_pg_decomposition_matches_ground_truth_scale(self, quick_ctx):
        from repro.hardware.power import GroundTruthPower

        gt = GroundTruthPower(quick_ctx.spec)
        vf5 = quick_ctx.spec.vf_table.fastest
        d = quick_ctx.pg_model.decomposition(vf5)
        # P_idle(Base) should approximate the spec's base power.
        assert d.p_base == pytest.approx(quick_ctx.spec.base_power, rel=0.25)
        # P_idle(CU) should approximate leakage + active idle at the
        # sweep's operating temperature (within thermal slack).
        approx_cu = gt.cu_leakage(vf5.voltage, 320.0) + gt.cu_active_idle(vf5)
        assert d.p_cu == pytest.approx(approx_cu, rel=0.35)
