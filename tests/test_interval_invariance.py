"""Interval-handling regression tests (the PR's headline bugfix).

The prediction pipeline used to normalise event counts by the module
constant ``INTERVAL_S`` (0.2 s) instead of the interval the sample was
actually collected over.  At the default interval the two coincide, so
nothing noticed; at any other interval every per-second rate -- and
therefore every fitted weight and power prediction -- silently
mis-scaled.  The tests here express the invariant directly: the same
machine state described at a different interval length (counts scaled
linearly, rates unchanged) must produce bitwise-equal-to-1e-9 model
inputs and outputs.  They fail on the pre-fix code.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.trace import Trace
from repro.core.batch import BatchObservation
from repro.faults.filtering import TelemetryFilter
from repro.fleet.simulator import FleetNode, FleetSimulator
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import INTERVAL_S, CoreAssignment, Platform
from repro.workloads.synthetic import make_mixed

SPEC = FX8320_SPEC
TOL = 1e-9


def _rescale(sample, factor):
    """The same machine state expressed over ``interval_s * factor``.

    Counts scale linearly with observation time, per-second rates (and
    with them every model input) stay identical, so every prediction
    must too.
    """
    return replace(
        sample,
        core_events=[ev * factor for ev in sample.core_events],
        true_core_events=[ev * factor for ev in sample.true_core_events],
        instructions=[i * factor for i in sample.instructions],
        interval_s=sample.interval_s * factor,
    )


def _busy_samples(n=6, seed=99):
    platform = Platform(SPEC, seed=seed)
    platform.set_assignment(
        CoreAssignment.one_per_cu(SPEC, [make_mixed("t")] * SPEC.num_cus)
    )
    return platform.run(n)


class TestPredictionInvariance:
    """analyze()/estimate_current() on rescaled samples."""

    def test_estimate_current_is_interval_invariant(self, quick_ctx):
        ppep = quick_ctx.full_ppep
        for sample in _busy_samples():
            baseline = ppep.estimate_current(sample)
            halved = ppep.estimate_current(_rescale(sample, 0.5))
            assert halved == pytest.approx(baseline, abs=TOL)

    def test_all_vf_predictions_are_interval_invariant(self, quick_ctx):
        ppep = quick_ctx.full_ppep
        sample = _busy_samples(n=3)[-1]
        base = ppep.analyze(sample)
        scaled = ppep.analyze(_rescale(sample, 0.5))
        for vf_index, prediction in base.predictions.items():
            other = scaled.predictions[vf_index]
            assert other.chip_power == pytest.approx(
                prediction.chip_power, abs=TOL
            )
            assert other.instructions_per_second == pytest.approx(
                prediction.instructions_per_second, abs=TOL
            )
            assert other.core_cpis == pytest.approx(
                prediction.core_cpis, abs=TOL
            )

    def test_prediction_energy_uses_sample_interval(self, quick_ctx):
        ppep = quick_ctx.full_ppep
        sample = _busy_samples(n=3)[-1]
        vf5 = SPEC.vf_table.fastest
        base = ppep.analyze(sample).prediction(vf5)
        scaled = ppep.analyze(_rescale(sample, 0.5)).prediction(vf5)
        # Same power over half the interval: half the energy.
        assert scaled.energy_per_interval == pytest.approx(
            0.5 * base.energy_per_interval, rel=1e-9
        )


class TestTrainingInvariance:
    """Fitted Eq. 3 weights from rescaled traces."""

    def test_fitted_weights_are_interval_invariant(self, quick_ctx):
        vf5 = SPEC.vf_table.fastest
        combos = quick_ctx.roster[:3]
        traces = {c.name: quick_ctx.trace(c, vf5) for c in combos}
        rescaled = {
            name: Trace(
                [_rescale(s, 0.5) for s in trace.samples],
                label=trace.label,
            )
            for name, trace in traces.items()
        }
        base = quick_ctx.trainer.fit_dynamic_model(
            quick_ctx.idle_model, traces, {}
        )
        other = quick_ctx.trainer.fit_dynamic_model(
            quick_ctx.idle_model, rescaled, {}
        )
        np.testing.assert_allclose(base.weights, other.weights, atol=TOL)
        assert other.alpha == pytest.approx(base.alpha, abs=TOL)

    def test_batch_observation_rates_use_sample_interval(self):
        samples = _busy_samples(n=4)
        base = BatchObservation.from_samples(SPEC, samples)
        scaled = BatchObservation.from_samples(
            SPEC, [_rescale(s, 0.5) for s in samples]
        )
        np.testing.assert_allclose(base.per_inst8, scaled.per_inst8, atol=TOL)
        np.testing.assert_allclose(base.cpi, scaled.cpi, atol=TOL)
        np.testing.assert_allclose(base.duty, scaled.duty, atol=TOL)


class TestIntervalPlumbing:
    """Construction-time parameters and mismatch guards."""

    def test_platform_custom_interval_stamps_samples(self):
        platform = Platform(SPEC, seed=5, slices_per_interval=5)
        assert platform.interval_s == pytest.approx(0.1)
        sample = platform.step()
        assert sample.interval_s == pytest.approx(0.1)
        assert len(sample.power_samples) == 5
        assert sample.time == pytest.approx(0.1)

    def test_platform_rejects_bad_interval_parameters(self):
        with pytest.raises(ValueError):
            Platform(SPEC, slices_per_interval=0)
        with pytest.raises(ValueError):
            Platform(SPEC, slice_s=0.0)

    def test_default_interval_unchanged(self):
        platform = Platform(SPEC, seed=5)
        assert platform.interval_s == pytest.approx(INTERVAL_S)
        assert platform.step().interval_s == pytest.approx(INTERVAL_S)

    def test_trace_rejects_mixed_intervals(self):
        samples = _busy_samples(n=3)
        mixed = samples[:2] + [_rescale(samples[2], 0.5)]
        with pytest.raises(ValueError, match="mixes interval lengths"):
            Trace(mixed, label="mixed")

    def test_filter_rejects_mid_stream_interval_change(self):
        filt = TelemetryFilter(SPEC)
        samples = _busy_samples(n=3)
        filt.ingest(samples[0])
        filt.ingest(samples[1])
        with pytest.raises(ValueError, match="changed interval length"):
            filt.ingest(_rescale(samples[2], 0.5))
        # A reset starts a new stream; the new interval then pins.
        filt.reset()
        assert filt.ingest(_rescale(samples[2], 0.5)) is not None

    def test_fleet_rejects_mixed_interval_nodes(self, quick_ctx):
        ppep = quick_ctx.full_ppep
        fast = Platform(SPEC, seed=1)
        slow = Platform(SPEC, seed=2, slices_per_interval=5)
        nodes = [
            FleetNode("node00", fast, ppep),
            FleetNode("node01", slow, ppep),
        ]
        with pytest.raises(ValueError, match="disagree on the decision"):
            FleetSimulator(nodes)
