"""Unit tests for error metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    ErrorSummary,
    absolute_percentage_error,
    average_absolute_error,
    group_summaries,
    summarize_errors,
)


class TestAbsolutePercentageError:
    def test_basic(self):
        errors = absolute_percentage_error([11.0, 9.0], [10.0, 10.0])
        assert errors == pytest.approx([0.1, 0.1])

    def test_sign_insensitive(self):
        errors = absolute_percentage_error([8.0], [10.0])
        assert errors[0] == pytest.approx(0.2)

    def test_nonpositive_actuals_excluded(self):
        errors = absolute_percentage_error([1.0, 5.0], [0.0, 10.0])
        assert errors.shape == (1,)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absolute_percentage_error([1.0], [1.0, 2.0])


class TestAAE:
    def test_mean_of_errors(self):
        aae = average_absolute_error([11.0, 12.0], [10.0, 10.0])
        assert aae == pytest.approx(0.15)

    def test_perfect_prediction(self):
        assert average_absolute_error([5.0], [5.0]) == 0.0

    def test_all_invalid_raises(self):
        with pytest.raises(ValueError):
            average_absolute_error([1.0], [0.0])


class TestSummaries:
    def test_summarize(self):
        s = summarize_errors("suite", [0.1, 0.2, 0.3])
        assert s.average == pytest.approx(0.2)
        assert s.std_dev == pytest.approx(np.std([0.1, 0.2, 0.3]))
        assert s.count == 3
        assert s.maximum == pytest.approx(0.3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_errors("x", [])

    def test_as_percent_renders(self):
        text = summarize_errors("x", [0.05]).as_percent()
        assert "5.0%" in text

    def test_group_summaries(self):
        per_bench = {"a": 0.1, "b": 0.2, "c": 0.4}
        groups = {"AB": ["a", "b"], "C": ["c"], "MISSING": ["zzz"]}
        summaries = group_summaries(per_bench, groups)
        labels = [s.label for s in summaries]
        assert labels == ["AB", "C"]  # empty group dropped
        assert summaries[0].average == pytest.approx(0.15)
