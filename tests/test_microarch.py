"""Unit tests for ChipSpec topology and presets."""

import dataclasses

import pytest

from repro.hardware.microarch import ChipSpec, FX8320_SPEC, PHENOM_II_SPEC
from repro.hardware.vfstates import FX8320_VF_TABLE, NB_VF_LO


class TestTopology:
    def test_fx8320_is_4x2(self):
        assert FX8320_SPEC.num_cus == 4
        assert FX8320_SPEC.cores_per_cu == 2
        assert FX8320_SPEC.num_cores == 8

    def test_phenom_is_6x1_without_pg(self):
        assert PHENOM_II_SPEC.num_cores == 6
        assert not PHENOM_II_SPEC.supports_power_gating

    def test_cu_of_core(self):
        assert FX8320_SPEC.cu_of_core(0) == 0
        assert FX8320_SPEC.cu_of_core(1) == 0
        assert FX8320_SPEC.cu_of_core(2) == 1
        assert FX8320_SPEC.cu_of_core(7) == 3

    def test_cu_of_core_out_of_range(self):
        with pytest.raises(ValueError):
            FX8320_SPEC.cu_of_core(8)

    def test_cores_of_cu(self):
        assert FX8320_SPEC.cores_of_cu(0) == (0, 1)
        assert FX8320_SPEC.cores_of_cu(3) == (6, 7)

    def test_cores_of_cu_out_of_range(self):
        with pytest.raises(ValueError):
            FX8320_SPEC.cores_of_cu(4)

    def test_cu_core_partition_is_exact(self):
        seen = []
        for cu in range(FX8320_SPEC.num_cus):
            seen.extend(FX8320_SPEC.cores_of_cu(cu))
        assert sorted(seen) == list(range(FX8320_SPEC.num_cores))


class TestValidation:
    def test_rejects_zero_cus(self):
        with pytest.raises(ValueError):
            dataclasses.replace(FX8320_SPEC, num_cus=0)

    def test_rejects_bad_nb_share(self):
        with pytest.raises(ValueError):
            dataclasses.replace(FX8320_SPEC, nb_latency_share=1.5)

    def test_rejects_zero_issue_width(self):
        with pytest.raises(ValueError):
            dataclasses.replace(FX8320_SPEC, issue_width=0)


class TestDerived:
    def test_with_nb_vf_returns_new_spec(self):
        low = FX8320_SPEC.with_nb_vf(NB_VF_LO)
        assert low.nb_vf == NB_VF_LO
        assert FX8320_SPEC.nb_vf != NB_VF_LO  # original untouched
        assert low.num_cores == FX8320_SPEC.num_cores

    def test_vf_table_is_paper_table(self):
        assert FX8320_SPEC.vf_table is FX8320_VF_TABLE

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FX8320_SPEC.num_cus = 2

    def test_issue_width_matches_families(self):
        assert FX8320_SPEC.issue_width == 4  # Bulldozer
        assert PHENOM_II_SPEC.issue_width == 3  # K10
