"""Unit tests for the bench_A microbenchmark."""

import pytest

from repro.workloads.microbench import bench_a


class TestBenchA:
    def test_is_nb_quiet(self):
        wl = bench_a()
        for phase in wl.phases:
            assert phase.mem_ns == 0.0
            assert phase.l2_miss_per_inst == 0.0
            assert phase.l2_request_per_inst == 0.0
            assert phase.dram_accesses_per_inst() == 0.0

    def test_single_steady_phase(self):
        assert len(bench_a().phases) == 1

    def test_cpi_is_frequency_invariant(self):
        phase = bench_a().phases[0]
        assert phase.cpi_at(1.4) == phase.cpi_at(3.5)

    def test_unbounded_by_default(self):
        assert bench_a().total_instructions is None

    def test_budget_parameter(self):
        assert bench_a(1e9).total_instructions == 1e9
