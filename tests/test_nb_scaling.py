"""Unit tests for the Section V-C2 NB scaling what-if model."""

import pytest

from repro.dvfs.nb_scaling import NBScalingModel, PerVFRunData


def run_data(
    vf_index=1,
    time_s=10.0,
    core_power=8.0,
    nb_idle_power=4.0,
    nb_dynamic_energy=20.0,
    memory_share=0.3,
):
    return PerVFRunData(
        vf_index=vf_index,
        time_s=time_s,
        core_power=core_power,
        nb_idle_power=nb_idle_power,
        nb_dynamic_energy=nb_dynamic_energy,
        memory_share=memory_share,
    )


class TestPerVFRunData:
    def test_energy_accounting(self):
        r = run_data()
        assert r.energy == pytest.approx((8.0 + 4.0) * 10.0 + 20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_data(time_s=0.0)
        with pytest.raises(ValueError):
            run_data(memory_share=1.5)


class TestProjection:
    model = NBScalingModel()

    def test_nb_hi_is_identity(self):
        r = run_data()
        p = self.model.project(r, nb_low=False)
        assert p.time_s == r.time_s
        assert p.energy == pytest.approx(r.energy)

    def test_time_stretches_by_memory_share(self):
        r = run_data(memory_share=0.4)
        p = self.model.project(r, nb_low=True)
        assert p.time_s == pytest.approx(10.0 * 1.2)  # +50% of 40%

    def test_cpu_bound_barely_stretches(self):
        r = run_data(memory_share=0.0)
        p = self.model.project(r, nb_low=True)
        assert p.time_s == r.time_s

    def test_energy_terms_follow_paper_assumptions(self):
        r = run_data(memory_share=0.0)  # isolate the power terms
        p = self.model.project(r, nb_low=True)
        expected = 8.0 * 10.0 + 4.0 * 0.6 * 10.0 + 20.0 * 0.64
        assert p.energy == pytest.approx(expected)

    def test_nb_heavy_workload_saves_despite_stretch(self):
        r = run_data(core_power=3.0, nb_idle_power=8.0, memory_share=0.2)
        p = self.model.project(r, nb_low=True)
        assert p.energy < r.energy

    def test_core_heavy_memory_exposed_workload_can_lose(self):
        r = run_data(core_power=20.0, nb_idle_power=1.0,
                     nb_dynamic_energy=1.0, memory_share=0.8)
        p = self.model.project(r, nb_low=True)
        assert p.energy > r.energy


class TestEvaluate:
    model = NBScalingModel()

    def sweep(self):
        # A stylised core-VF sweep: faster states burn more core power
        # but finish sooner.
        return [
            run_data(vf_index=5, time_s=4.0, core_power=30.0, memory_share=0.2),
            run_data(vf_index=3, time_s=6.0, core_power=14.0, memory_share=0.25),
            run_data(vf_index=1, time_s=9.0, core_power=6.0, memory_share=0.3),
        ]

    def test_outcome_structure(self):
        outcome = self.model.evaluate(self.sweep())
        assert len(outcome.combos) == 6  # 3 VF states x 2 NB states
        assert 0.0 <= outcome.energy_saving < 1.0
        assert outcome.speedup >= 1.0

    def test_saving_is_positive_for_nb_share(self):
        outcome = self.model.evaluate(self.sweep())
        assert outcome.energy_saving > 0.05

    def test_speedup_baseline_is_vf1_hi(self):
        outcome = self.model.evaluate(self.sweep())
        base = [c for c in outcome.combos if c.vf_index == 1 and not c.nb_low][0]
        fastest_eligible = min(
            (
                c
                for c in outcome.combos
                if c.energy <= base.energy * (1 + self.model.energy_tolerance)
            ),
            key=lambda c: c.time_s,
        )
        assert outcome.speedup == pytest.approx(base.time_s / fastest_eligible.time_s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            self.model.evaluate([])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NBScalingModel(idle_drop=1.0)
        with pytest.raises(ValueError):
            NBScalingModel(leading_load_stretch=-0.1)
        with pytest.raises(ValueError):
            NBScalingModel(energy_tolerance=-0.1)
