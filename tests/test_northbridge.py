"""Unit tests for the north-bridge model."""

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.northbridge import NorthBridge
from repro.hardware.vfstates import NB_VF_HI, NB_VF_LO


@pytest.fixture
def nb():
    return NorthBridge(FX8320_SPEC)


@pytest.fixture
def nb_low():
    return NorthBridge(FX8320_SPEC, NB_VF_LO)


class TestFrequencyScaling:
    def test_stock_multiplier_is_one(self, nb):
        assert nb.memory_time_multiplier() == pytest.approx(1.0)

    def test_half_frequency_gives_paper_stretch(self, nb_low):
        # nb_latency_share = 0.5 and f halves -> leading loads x1.5,
        # exactly the paper's Section V-C2 assumption.
        assert nb_low.memory_time_multiplier() == pytest.approx(1.5)

    def test_bandwidth_shrinks_at_low_nb(self, nb, nb_low):
        assert nb_low.effective_bandwidth() < nb.effective_bandwidth()

    def test_with_vf_preserves_spec(self, nb):
        low = nb.with_vf(NB_VF_LO)
        assert low.spec is nb.spec
        assert low.vf == NB_VF_LO


class TestContention:
    def test_zero_demand_is_uncontended(self, nb):
        point = nb.resolve_contention(0.0)
        assert point.latency_multiplier == pytest.approx(1.0)
        assert point.utilisation == 0.0

    def test_multiplier_monotone_in_demand(self, nb):
        demands = [1e9, 3e9, 6e9, 9e9, 12e9]
        multipliers = [nb.resolve_contention(d).latency_multiplier for d in demands]
        assert multipliers == sorted(multipliers)
        assert multipliers[-1] > multipliers[0]

    def test_multiplier_capped(self, nb):
        point = nb.resolve_contention(1e15)
        assert point.latency_multiplier <= nb.spec.contention_cap

    def test_utilisation_below_one(self, nb):
        assert nb.resolve_contention(1e15).utilisation < 1.0

    def test_negative_demand_rejected(self, nb):
        with pytest.raises(ValueError):
            nb.resolve_contention(-1.0)

    def test_moderate_demand_mild_contention(self, nb):
        # 25% utilisation should cost well under 1.25x latency.
        point = nb.resolve_contention(0.25 * nb.effective_bandwidth())
        assert 1.0 < point.latency_multiplier < 1.25


class TestMABDistortion:
    def test_no_distortion_when_idle(self, nb):
        assert nb.mab_distortion(0.0) == pytest.approx(1.0)

    def test_distortion_grows_with_pressure(self, nb):
        assert nb.mab_distortion(0.9) > nb.mab_distortion(0.3) > 1.0

    def test_distortion_is_bounded(self, nb):
        assert nb.mab_distortion(1.0) <= 1.0 + nb.spec.mab_pressure_gain


class TestNBDynamicPower:
    def test_zero_activity_zero_power(self, nb):
        assert nb.dynamic_power(0.0, 0.0) == 0.0

    def test_scales_with_access_rates(self, nb):
        p1 = nb.dynamic_power(1e8, 1e7)
        p2 = nb.dynamic_power(2e8, 2e7)
        assert p2 == pytest.approx(2 * p1)

    def test_dram_access_costs_more_than_l3(self, nb):
        assert nb.dynamic_power(0.0, 1e8) > nb.dynamic_power(1e8, 0.0)

    def test_low_voltage_cuts_power_quadratically(self, nb, nb_low):
        ratio = nb_low.dynamic_power(1e8, 1e8) / nb.dynamic_power(1e8, 1e8)
        expected = (NB_VF_LO.voltage / NB_VF_HI.voltage) ** 2
        assert ratio == pytest.approx(expected)

    def test_negative_rate_rejected(self, nb):
        with pytest.raises(ValueError):
            nb.dynamic_power(-1.0, 0.0)
