"""The repro.obs subsystem: metrics, events, ledger, and report.

The contracts the rest of the pipeline leans on:

- instruments are cheap, memoised per name, and the
  :class:`NullRegistry` mode records nothing;
- the JSONL event schema is versioned and validated at emission time,
  and the golden file pins the on-disk shape of every event type;
- the :class:`PredictionLedger` recomputes the same drift flags from a
  replayed stream that the live run emitted (determinism is what makes
  ``ppep-repro obs`` trustworthy).
"""

import json
import os

import pytest

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventLog,
    read_events,
)
from repro.obs.ledger import CusumDetector, PredictionLedger, RollingStats
from repro.obs.metrics import (
    Histogram,
    NullRegistry,
    Registry,
    get_registry,
    set_registry,
)
from repro.obs.report import format_report, replay

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "obs_events.golden.jsonl")


def _emit_one_of_each(events):
    """One deterministic event of every schema type, in a fixed order."""
    events.emit(
        "prediction", node="node00", interval=7, vf_index=5,
        predicted_power=41.25, measured_power=40.0, error=1.25,
        interval_s=0.2, predicted_cpi=1.5, realized_cpi=1.45,
        quality="good",
    )
    events.emit("model_retrain", node="node00", interval=0,
                spec="fx8320", seconds=2.5)
    events.emit("vf_transition", node="node00", interval=8,
                from_vf=[5, 5, 5, 5], to_vf=[3, 3, 5, 5])
    events.emit("filter_verdict", node="node00", interval=8,
                quality="repaired", issues=["sensor_spike"])
    events.emit("quarantine_enter", node="node01", interval=9, bad_streak=3)
    events.emit("quarantine_exit", node="node01", interval=15,
                quarantined_intervals=6)
    events.emit("cap_reallocation", node="cluster", interval=9,
                budget_w=210.0, healthy_nodes=2, total_nodes=3)
    events.emit("drift", node="node00", interval=40, statistic=8.4,
                threshold=8.0, rolling_mae=3.2)
    events.emit("telemetry", node="fx8320-n00", interval=41, sku="fx8320",
                sample={"cu_vfs": [5, 5, 5, 5], "nb_vf": 5,
                        "power_gating": True, "measured_power": 40.0,
                        "temperature": 55.0, "interval_s": 0.2})
    events.emit("decision", node="fx8320-n00", interval=41, sku="fx8320",
                vf_index=4, delivery_index=83, quality="good")
    events.emit("shard_restart", node="shard-fx8320", interval=42,
                sku="fx8320", restarts=1, inflight_requeued=5)
    events.emit("shard_degraded", node="shard-fx8320", interval=42,
                sku="fx8320", reason="heartbeat_stall")
    events.emit("shard_recovered", node="shard-fx8320", interval=44,
                sku="fx8320", degraded_s=0.75)
    events.emit("backend_retry", node="node00", interval=45,
                reason="timeout", attempt=1)
    events.emit("backend_degraded", node="node00", interval=46,
                reason="transient", streak=2)
    events.emit("backend_quarantine", node="node00", interval=47,
                action="enter", streak=3)


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        reg = Registry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.counter("c").value == pytest.approx(3.5)
        reg.gauge("g").set(7)
        reg.gauge("g").set(1.5)
        assert reg.gauge("g").value == pytest.approx(1.5)
        h = reg.histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]
        assert h.mean == pytest.approx(138.875)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(500.0)

    def test_instruments_are_memoised_per_name(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")
        assert reg.counter("x") is not reg.counter("x2")

    def test_histogram_percentile_upper_edge_convention(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.percentile(0.25) == pytest.approx(1.0)
        assert h.percentile(0.75) == pytest.approx(2.0)
        assert h.percentile(1.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_timer_records_span(self):
        reg = Registry()
        with reg.timer("span"):
            pass
        h = reg.histogram("span")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_snapshot_lists_everything(self):
        reg = Registry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(0.5)
        snap = reg.snapshot()
        assert snap["a"] == {"type": "counter", "value": 1.0}
        assert snap["b"] == {"type": "gauge", "value": 2.0}
        assert snap["c"]["count"] == 1

    def test_null_registry_records_nothing(self):
        reg = NullRegistry()
        assert reg.enabled is False
        c = reg.counter("anything")
        c.inc(100)
        assert c.value == 0.0
        assert reg.counter("other") is c  # shared singleton, no dict growth
        with reg.timer("span"):
            pass
        assert reg.snapshot() == {}

    def test_set_registry_swaps_and_restores(self):
        mine = Registry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestEventLog:
    def test_emit_stamps_schema_and_common_fields(self):
        events = EventLog()
        e = events.emit("quarantine_enter", node="n1", interval=4, bad_streak=2)
        assert e["v"] == SCHEMA_VERSION
        assert e["type"] == "quarantine_enter"
        assert e["node"] == "n1"
        assert e["interval"] == 4
        assert len(events) == 1
        assert events.of_type("quarantine_enter") == [e]

    def test_unknown_type_and_missing_fields_raise(self):
        events = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            events.emit("reboot")
        with pytest.raises(ValueError, match="missing required fields"):
            events.emit("prediction", vf_index=5)
        assert len(events) == 0

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as events:
            _emit_one_of_each(events)
            in_memory = list(events.records)
        replayed = list(read_events(path))
        assert replayed == in_memory

    def test_read_events_rejects_newer_schema(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"v": SCHEMA_VERSION + 1, "type": "x"}) + "\n")
        with pytest.raises(ValueError, match="newer than"):
            list(read_events(path))

    def test_read_events_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            list(read_events(path))


class TestEventLogBuffering:
    """The buffered-write mode: flush cadence, close(), crash behavior."""

    @staticmethod
    def _lines_on_disk(path):
        if not os.path.exists(path):
            return 0
        with open(path) as handle:
            return sum(1 for line in handle if line.strip())

    def test_default_mode_buffers_until_threshold(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = EventLog(path, flush_every=4)
        for k in range(3):
            events.emit("quarantine_enter", interval=k, bad_streak=1)
        # Three events sit in the write buffer; nothing is guaranteed on
        # disk yet (libc may buffer the whole batch).
        assert self._lines_on_disk(path) < 3
        events.emit("quarantine_enter", interval=3, bad_streak=1)
        assert self._lines_on_disk(path) == 4
        events.close()

    def test_per_event_flush_is_opt_in(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = EventLog(path, flush_every=1)
        for k in range(3):
            events.emit("quarantine_enter", interval=k, bad_streak=1)
            assert self._lines_on_disk(path) == k + 1
        events.close()

    def test_abort_discards_pending_but_keeps_flushed(self, tmp_path):
        """The checkpoint-tied exit path: everything flushed stays,
        everything pending is dropped from the file (the restart that
        replays from the durable state will re-emit it)."""
        path = str(tmp_path / "events.jsonl")
        events = EventLog(path, flush_every=1000)
        events.emit("quarantine_enter", interval=0, bad_streak=1)
        events.flush()
        events.emit("quarantine_enter", interval=1, bad_streak=1)
        events.abort()
        assert self._lines_on_disk(path) == 1
        assert len(events) == 2  # in-memory records are untouched
        events.close()  # a later close writes nothing extra
        assert self._lines_on_disk(path) == 1

    def test_close_flushes_the_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = EventLog(path, flush_every=1000)
        for k in range(7):
            events.emit("quarantine_enter", interval=k, bad_streak=1)
        events.close()
        assert self._lines_on_disk(path) == 7
        events.close()  # idempotent

    def test_explicit_flush(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = EventLog(path, flush_every=1000)
        events.emit("quarantine_enter", interval=0, bad_streak=1)
        events.flush()
        assert self._lines_on_disk(path) == 1
        events.close()

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError, match="flush_every"):
            EventLog(flush_every=0)

    def test_failing_run_leaves_parseable_file(self, tmp_path):
        """A run that dies mid-loop must still leave valid JSONL behind.

        This is the contract the CLI paths rely on when they wrap their
        EventLog in ``with``: whatever was emitted before the crash is
        flushed, and every line on disk parses.
        """
        path = str(tmp_path / "events.jsonl")
        with pytest.raises(RuntimeError, match="sensor exploded"):
            with EventLog(path, flush_every=1000) as events:
                for k in range(5):
                    events.emit("quarantine_enter", interval=k, bad_streak=1)
                raise RuntimeError("sensor exploded")
        replayed = list(read_events(path))
        assert len(replayed) == 5
        assert all(e["type"] == "quarantine_enter" for e in replayed)

    def test_demo_crash_leaves_parseable_ledger(self, tmp_path):
        """The ``ppep-repro obs --demo`` recorder specifically: a model
        failure partway through the drive loop still produces a
        replayable JSONL file (the recorder wraps its log in ``with``)."""
        from types import SimpleNamespace

        from repro.experiments import obs_drift
        from repro.hardware.microarch import FX8320_SPEC

        calls = {"n": 0}

        class _BoomPPEP:
            spec = FX8320_SPEC

            def estimate_current(self, _sample):
                calls["n"] += 1
                if calls["n"] >= 3:
                    raise RuntimeError("model exploded")
                return 40.0

        ctx = SimpleNamespace(
            full_ppep=_BoomPPEP(), spec=FX8320_SPEC,
            base_seed=20141213, engine="vector",
        )
        path = str(tmp_path / "demo.jsonl")
        with pytest.raises(RuntimeError, match="model exploded"):
            obs_drift.record_demo(
                ctx, path=path, n_intervals=5, drift_at=1,
                warmup_intervals=0,
            )
        replayed = list(read_events(path))
        assert len(replayed) >= 2
        assert all("type" in e and "v" in e for e in replayed)


class TestGoldenSchema:
    """Pin the on-disk shape of every event type.

    A diff in the golden file is a schema change: bump
    :data:`SCHEMA_VERSION` and regenerate (see the test body for the
    one-liner) rather than silently breaking recorded ledgers.
    """

    def test_every_type_matches_golden_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as events:
            _emit_one_of_each(events)
        # Regenerate with:
        #   PYTHONPATH=src python -c "from tests.test_obs import _emit_one_of_each; \
        #     from repro.obs.events import EventLog; \
        #     log = EventLog('tests/data/obs_events.golden.jsonl'); \
        #     _emit_one_of_each(log); log.close()"
        with open(path) as fresh, open(GOLDEN) as golden:
            assert fresh.read() == golden.read()

    def test_golden_file_covers_every_event_type(self):
        seen = {event["type"] for event in read_events(GOLDEN)}
        assert seen == set(EVENT_TYPES)

    def test_golden_fields_match_schema(self):
        for event in read_events(GOLDEN):
            assert event["v"] == SCHEMA_VERSION
            for field in EVENT_FIELDS[event["type"]]:
                assert field in event, (event["type"], field)


class TestRollingStats:
    def test_window_evicts_oldest(self):
        stats = RollingStats(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.add(v)
        assert stats.mean == pytest.approx(3.0)  # 2, 3, 4
        assert stats.count == 4
        assert stats.lifetime_mean == pytest.approx(2.5)

    def test_percentile_nearest_rank(self):
        stats = RollingStats(window=8)
        for v in (5.0, 1.0, 3.0, 2.0):
            stats.add(v)
        assert stats.percentile(0.5) == pytest.approx(2.0)
        assert stats.percentile(1.0) == pytest.approx(5.0)
        assert stats.percentile(0.0) == pytest.approx(1.0)


class TestCusumDetector:
    def test_requires_calibration(self):
        detector = CusumDetector()
        assert not detector.calibrated
        with pytest.raises(RuntimeError):
            detector.update(1.0)

    def test_in_band_never_flags_and_shift_does(self):
        detector = CusumDetector(slack=0.5, threshold=8.0)
        detector.calibrate(mean=1.0, std=0.1)
        assert not any(detector.update(1.0) for _ in range(200))
        # A sustained 2-sigma shift accumulates ~1.5 per step: the first
        # flag lands once the statistic crosses h, then the reset starts
        # the accumulation over (a train of flags, not one saturated alarm).
        flags = [detector.update(1.2) for _ in range(20)]
        assert any(flags)
        first = flags.index(True)
        assert detector.statistic < detector.threshold  # reset after flag
        assert any(flags[first + 1:])


class TestPredictionLedger:
    def _fill(self, ledger, n, error=1.0, node="node0", start=0):
        for k in range(start, start + n):
            ledger.record(
                node=node, interval=k, vf_index=5,
                predicted_power=40.0 + error, measured_power=40.0,
                interval_s=0.2,
            )

    def test_rolling_and_per_vf_aggregates(self):
        ledger = PredictionLedger(window=4, calibration_intervals=2)
        self._fill(ledger, 6, error=2.0)
        assert ledger.node_mae("node0") == pytest.approx(2.0)
        assert ledger.per_vf_mae() == {5: pytest.approx(2.0)}
        assert ledger.per_vf_relative()[5] == pytest.approx(0.05)
        summary = ledger.node_summary()["node0"]
        assert summary["records"] == 6
        assert summary["drift_flags"] == 0

    def test_drift_flags_on_error_shift(self):
        events = EventLog()
        ledger = PredictionLedger(
            calibration_intervals=16, events=events
        )
        self._fill(ledger, 32, error=1.0)
        assert ledger.drift_flags == []
        self._fill(ledger, 32, error=6.0, start=32)
        assert ledger.drift_flags
        node, interval, _stat = ledger.drift_flags[0]
        assert node == "node0" and interval >= 32
        assert len(events.of_type("drift")) == len(ledger.drift_flags)
        assert len(events.of_type("prediction")) == 64

    def test_set_band_skips_online_calibration(self):
        ledger = PredictionLedger(calibration_intervals=16)
        ledger.set_band("node0", mean=1.0, std=0.1)
        self._fill(ledger, 8, error=6.0)
        assert ledger.drift_flags  # flagged well before 16 records

    def test_replay_reproduces_live_drift_flags(self):
        events = EventLog()
        live = PredictionLedger(calibration_intervals=16, events=events)
        self._fill(live, 32, error=1.0)
        self._fill(live, 32, error=6.0, start=32)
        replayed = PredictionLedger.from_events(
            events.records, calibration_intervals=16
        )
        assert replayed.drift_flags == live.drift_flags
        assert replayed.node_summary() == live.node_summary()

    def test_keep_records_off_drops_rows_not_aggregates(self):
        ledger = PredictionLedger(keep_records=False)
        self._fill(ledger, 8, error=1.5)
        assert ledger.records == []
        assert ledger.node_mae("node0") == pytest.approx(1.5)

    def test_calibration_needs_two_intervals(self):
        with pytest.raises(ValueError):
            PredictionLedger(calibration_intervals=1)


class TestReport:
    def _stream(self):
        events = EventLog()
        _emit_one_of_each(events)
        return events.records

    def test_replay_tallies_and_timeline(self):
        report = replay(self._stream())
        assert report.event_counts["prediction"] == 1
        # The good tally comes from the prediction row, the repaired one
        # from the explicit (anomaly-only) filter_verdict event.
        assert report.verdicts["node00"] == {"good": 1, "repaired": 1}
        assert report.transitions["node00"] == 1
        assert report.quarantined == []  # node01 exited quarantine
        descriptions = [d for _i, _n, d in report.timeline]
        assert any("quarantined" in d for d in descriptions)
        assert any("re-admitted" in d for d in descriptions)
        assert any("drift" in d for d in descriptions)

    def test_unmatched_quarantine_enter_stays_quarantined(self):
        stream = [
            e for e in self._stream() if e["type"] != "quarantine_exit"
        ]
        report = replay(stream)
        assert report.quarantined == ["node01"]

    def test_format_report_renders_all_sections(self):
        text = format_report(replay(self._stream()))
        assert "Online prediction error by VF state" in text
        assert "Per-node health" in text
        assert "Drift / event timeline" in text
        assert "QUARANTINED" not in text  # node01 was re-admitted
        assert "Replayed events:" in text

    def test_recomputed_drift_deduplicates_against_recorded(self):
        events = EventLog()
        ledger = PredictionLedger(calibration_intervals=16, events=events)
        for k in range(32):
            ledger.record(
                node="node0", interval=k, vf_index=5,
                predicted_power=41.0, measured_power=40.0, interval_s=0.2,
            )
        for k in range(32, 64):
            ledger.record(
                node="node0", interval=k, vf_index=5,
                predicted_power=46.0, measured_power=40.0, interval_s=0.2,
            )
        assert ledger.drift_flags
        report = replay(events.records, calibration_intervals=16)
        drift_lines = [
            item for item in report.timeline if "drift" in item[2]
        ]
        # One timeline line per flag, not one per (recorded, recomputed) pair.
        assert len(drift_lines) == len(ledger.drift_flags)
