"""Tests for trace persistence (save/load round trip)."""

import os

import numpy as np
import pytest

from repro.analysis.persistence import (
    load_ppep,
    load_trace,
    save_ppep,
    save_trace,
)
from repro.analysis.trace import Trace
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.workloads.synthetic import make_mixed


@pytest.fixture
def trace():
    platform = Platform(FX8320_SPEC, seed=31, power_gating=True)
    platform.set_cu_vf(1, FX8320_SPEC.vf_table.by_index(2))
    platform.set_assignment(CoreAssignment.packed([make_mixed("persist")]))
    return Trace(platform.run(4), label="round-trip")


class TestRoundTrip:
    def test_roundtrip_preserves_measurements(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        assert len(loaded) == len(trace)
        assert loaded.label == "round-trip"
        np.testing.assert_allclose(
            loaded.measured_power(), trace.measured_power()
        )
        np.testing.assert_allclose(loaded.true_power(), trace.true_power())
        np.testing.assert_allclose(loaded.temperatures(), trace.temperatures())

    def test_roundtrip_preserves_events(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        for original, restored in zip(trace, loaded):
            for a, b in zip(original.core_events, restored.core_events):
                assert a == b
            for a, b in zip(original.true_core_events, restored.true_core_events):
                assert a == b
            assert original.instructions == pytest.approx(restored.instructions)

    def test_roundtrip_preserves_configuration(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        for original, restored in zip(trace, loaded):
            assert [v.index for v in original.cu_vfs] == [
                v.index for v in restored.cu_vfs
            ]
            assert original.power_gating == restored.power_gating
            assert original.nb_vf.index == restored.nb_vf.index

    def test_breakdown_not_persisted(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        assert loaded[0].breakdown is None

    def test_loaded_trace_feeds_models(self, trace, tmp_path):
        """A reloaded trace is a drop-in for the live one."""
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        chip = loaded.chip_events(measured=True)
        assert chip[0].instructions > 0

    def test_version_check(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        # Corrupt the version field.
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_trace(path, FX8320_SPEC)


def _tiny_ppep():
    from repro.core.dynamic_power import DynamicPowerModel
    from repro.core.idle_power import IdlePowerModel
    from repro.core.ppep import PPEP
    from repro.core.regression import Polynomial

    return PPEP(
        FX8320_SPEC,
        IdlePowerModel(
            w_idle1=Polynomial((0.01, 0.02)),
            w_idle0=Polynomial((1.0, -0.5)),
            voltage_range=(0.9, 1.3),
        ),
        DynamicPowerModel(
            weights=tuple(0.1 * (i + 1) for i in range(9)),
            alpha=1.2,
            train_voltage=1.3,
        ),
    )


class TestPPEPArtifacts:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "model.npz")
        ppep = _tiny_ppep()
        save_ppep(ppep, path)
        loaded = load_ppep(path, FX8320_SPEC)
        assert loaded.dynamic_model.weights == ppep.dynamic_model.weights
        assert loaded.idle_model.w_idle1.coefficients == (0.01, 0.02)
        assert loaded.pg_model is None

    def test_wrong_version_rejected(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_ppep(_tiny_ppep(), path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_ppep(path, FX8320_SPEC)

    def test_wrong_chip_rejected(self, tmp_path):
        from repro.hardware.microarch import PHENOM_II_SPEC

        path = str(tmp_path / "model.npz")
        save_ppep(_tiny_ppep(), path)
        with pytest.raises(ValueError, match="trained on"):
            load_ppep(path, PHENOM_II_SPEC)


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, trace, tmp_path):
        save_trace(trace, str(tmp_path / "trace.npz"))
        save_ppep(_tiny_ppep(), str(tmp_path / "model.npz"))
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []
        assert sorted(os.listdir(tmp_path)) == ["model.npz", "trace.npz"]

    def test_suffix_appended_like_savez(self, trace, tmp_path):
        # np.savez_compressed appends .npz to bare paths; the atomic
        # writer must match so load paths stay predictable.
        save_trace(trace, str(tmp_path / "bare"))
        assert (tmp_path / "bare.npz").exists()
        loaded = load_trace(str(tmp_path / "bare.npz"), FX8320_SPEC)
        assert len(loaded) == len(trace)

    def test_failed_write_leaves_no_debris(self, tmp_path, monkeypatch):
        from repro.analysis import persistence

        def boom(handle, **arrays):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(persistence.np, "savez_compressed", boom)
        with pytest.raises(RuntimeError):
            persistence._atomic_savez(
                str(tmp_path / "doomed.npz"), version=np.array(1)
            )
        assert os.listdir(tmp_path) == []
