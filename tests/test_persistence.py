"""Tests for trace persistence (save/load round trip)."""

import numpy as np
import pytest

from repro.analysis.persistence import load_trace, save_trace
from repro.analysis.trace import Trace
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.workloads.synthetic import make_mixed


@pytest.fixture
def trace():
    platform = Platform(FX8320_SPEC, seed=31, power_gating=True)
    platform.set_cu_vf(1, FX8320_SPEC.vf_table.by_index(2))
    platform.set_assignment(CoreAssignment.packed([make_mixed("persist")]))
    return Trace(platform.run(4), label="round-trip")


class TestRoundTrip:
    def test_roundtrip_preserves_measurements(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        assert len(loaded) == len(trace)
        assert loaded.label == "round-trip"
        np.testing.assert_allclose(
            loaded.measured_power(), trace.measured_power()
        )
        np.testing.assert_allclose(loaded.true_power(), trace.true_power())
        np.testing.assert_allclose(loaded.temperatures(), trace.temperatures())

    def test_roundtrip_preserves_events(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        for original, restored in zip(trace, loaded):
            for a, b in zip(original.core_events, restored.core_events):
                assert a == b
            for a, b in zip(original.true_core_events, restored.true_core_events):
                assert a == b
            assert original.instructions == pytest.approx(restored.instructions)

    def test_roundtrip_preserves_configuration(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        for original, restored in zip(trace, loaded):
            assert [v.index for v in original.cu_vfs] == [
                v.index for v in restored.cu_vfs
            ]
            assert original.power_gating == restored.power_gating
            assert original.nb_vf.index == restored.nb_vf.index

    def test_breakdown_not_persisted(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        assert loaded[0].breakdown is None

    def test_loaded_trace_feeds_models(self, trace, tmp_path):
        """A reloaded trace is a drop-in for the live one."""
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path, FX8320_SPEC)
        chip = loaded.chip_events(measured=True)
        assert chip[0].instructions > 0

    def test_version_check(self, trace, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        # Corrupt the version field.
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_trace(path, FX8320_SPEC)
