"""Unit tests for the workload phase model."""

import pytest

from repro.workloads.phases import Workload, WorkloadPhase


def phase(name="p", instructions=1e9, ccpi=1.0, mem_ns=0.2, **kw):
    return WorkloadPhase(
        name=name, instructions=instructions, ccpi=ccpi, mem_ns=mem_ns, **kw
    )


class TestWorkloadPhase:
    def test_cpi_decomposition(self):
        p = phase(ccpi=1.0, mem_ns=0.5)
        # CPI(f) = ccpi + mem_ns * f  (f in GHz).
        assert p.cpi_at(2.0) == pytest.approx(2.0)
        assert p.cpi_at(4.0) == pytest.approx(3.0)

    def test_contention_multiplies_memory_only(self):
        p = phase(ccpi=1.0, mem_ns=0.5)
        assert p.cpi_at(2.0, contention=2.0) == pytest.approx(1.0 + 2.0)

    def test_memory_boundness_range(self):
        cpu = phase(mem_ns=0.0)
        mem = phase(ccpi=0.5, mem_ns=2.0)
        assert cpu.memory_boundness(3.5) == 0.0
        assert 0.9 < mem.memory_boundness(3.5) < 1.0

    def test_memory_boundness_grows_with_frequency(self):
        p = phase(ccpi=1.0, mem_ns=0.3)
        assert p.memory_boundness(3.5) > p.memory_boundness(1.4)

    def test_dram_traffic(self):
        p = phase(l2_miss_per_inst=0.02, l3_miss_ratio=0.5)
        assert p.dram_accesses_per_inst() == pytest.approx(0.01)
        assert p.bytes_per_inst(64) == pytest.approx(0.64)

    def test_scaled_changes_only_length(self):
        p = phase(instructions=1e9)
        q = p.scaled(2.0)
        assert q.instructions == pytest.approx(2e9)
        assert q.ccpi == p.ccpi

    def test_validation(self):
        with pytest.raises(ValueError):
            phase(instructions=0)
        with pytest.raises(ValueError):
            phase(ccpi=0)
        with pytest.raises(ValueError):
            phase(mem_ns=-1)
        with pytest.raises(ValueError):
            phase(l3_miss_ratio=1.5)
        with pytest.raises(ValueError):
            phase(branch_per_inst=0.1, mispredict_per_inst=0.2)


class TestWorkload:
    def two_phase(self, total=None):
        return Workload(
            "w",
            [phase("a", instructions=1e9), phase("b", instructions=3e9)],
            total_instructions=total,
        )

    def test_loop_instructions(self):
        assert self.two_phase().loop_instructions == pytest.approx(4e9)

    def test_phase_at_start(self):
        assert self.two_phase().phase_at(0).name == "a"

    def test_phase_at_boundary(self):
        assert self.two_phase().phase_at(1e9).name == "b"

    def test_phase_at_wraps(self):
        wl = self.two_phase()
        assert wl.phase_at(4e9).name == "a"
        assert wl.phase_at(4e9 + 2e9).name == "b"

    def test_phase_at_negative_rejected(self):
        with pytest.raises(ValueError):
            self.two_phase().phase_at(-1)

    def test_unbounded_never_finishes(self):
        assert not self.two_phase().is_finished(1e15)

    def test_bounded_finishes(self):
        wl = self.two_phase(total=5e9)
        assert not wl.is_finished(4.9e9)
        assert wl.is_finished(5e9)

    def test_with_budget(self):
        wl = self.two_phase().with_budget(1e9)
        assert wl.total_instructions == 1e9
        assert wl.name == "w"

    def test_averages_are_instruction_weighted(self):
        wl = Workload(
            "w",
            [
                phase("a", instructions=1e9, mem_ns=0.0, ccpi=1.0),
                phase("b", instructions=3e9, mem_ns=0.4, ccpi=2.0),
            ],
        )
        assert wl.average_mem_ns() == pytest.approx(0.3)
        assert wl.average_ccpi() == pytest.approx(1.75)

    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError):
            Workload("w", [])

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            Workload("w", [phase()], total_instructions=0)
