"""Unit/integration tests for the stepping platform simulator."""

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import (
    CoreAssignment,
    INTERVAL_S,
    Platform,
    SLICES_PER_INTERVAL,
)
from repro.hardware.vfstates import FX8320_VF_TABLE, NB_VF_LO, VFState
from repro.workloads.synthetic import make_cpu_bound, make_memory_bound

VF5 = FX8320_VF_TABLE.by_index(5)
VF1 = FX8320_VF_TABLE.by_index(1)


class TestCoreAssignment:
    def test_idle_is_empty(self):
        assert len(CoreAssignment.idle()) == 0

    def test_packed_fills_from_zero(self):
        wls = [make_cpu_bound("a"), make_cpu_bound("b")]
        assignment = CoreAssignment.packed(wls)
        assert assignment.get(0) is wls[0]
        assert assignment.get(1) is wls[1]
        assert assignment.get(2) is None

    def test_one_per_cu_uses_first_core_of_each_cu(self):
        wls = [make_cpu_bound("a"), make_cpu_bound("b")]
        assignment = CoreAssignment.one_per_cu(FX8320_SPEC, wls)
        assert assignment.get(0) is wls[0]
        assert assignment.get(2) is wls[1]
        assert assignment.get(1) is None

    def test_one_per_cu_overflow_rejected(self):
        wls = [make_cpu_bound(str(i)) for i in range(5)]
        with pytest.raises(ValueError):
            CoreAssignment.one_per_cu(FX8320_SPEC, wls)


class TestStepping:
    def test_interval_sample_shape(self, busy_platform):
        sample = busy_platform.step()
        assert len(sample.power_samples) == SLICES_PER_INTERVAL
        assert len(sample.core_events) == FX8320_SPEC.num_cores
        assert len(sample.instructions) == FX8320_SPEC.num_cores
        assert sample.time == pytest.approx(INTERVAL_S)

    def test_time_advances(self, busy_platform):
        busy_platform.step()
        sample = busy_platform.step()
        assert sample.time == pytest.approx(2 * INTERVAL_S)
        assert sample.index == 1

    def test_measured_power_is_sample_mean(self, busy_platform):
        sample = busy_platform.step()
        assert sample.measured_power == pytest.approx(
            sum(sample.power_samples) / len(sample.power_samples)
        )

    def test_only_assigned_cores_retire(self, busy_platform):
        sample = busy_platform.step()
        assert sample.instructions[0] > 0
        assert all(i == 0 for i in sample.instructions[1:])

    def test_deterministic_given_seed(self, cpu_workload):
        def run():
            p = Platform(FX8320_SPEC, seed=5)
            p.set_assignment(CoreAssignment.packed([cpu_workload]))
            return [s.measured_power for s in p.run(5)]

        assert run() == run()

    def test_seeds_differ(self, cpu_workload):
        def run(seed):
            p = Platform(FX8320_SPEC, seed=seed)
            p.set_assignment(CoreAssignment.packed([cpu_workload]))
            return [s.measured_power for s in p.run(3)]

        assert run(1) != run(2)

    def test_run_rejects_nonpositive(self, platform):
        with pytest.raises(ValueError):
            platform.run(0)


class TestVFControl:
    def test_set_all_vf(self, platform):
        platform.set_all_vf(VF1)
        assert all(vf is VF1 for vf in platform.cu_vfs)

    def test_per_cu_vf(self, platform):
        platform.set_cu_vf(2, VF1)
        assert platform.cu_vfs[2] is VF1
        assert platform.cu_vfs[0].index == 5

    def test_rejects_foreign_vf(self, platform):
        with pytest.raises(ValueError):
            platform.set_all_vf(VFState(7, 2.0, 5.0))

    def test_rejects_bad_cu(self, platform):
        with pytest.raises(ValueError):
            platform.set_cu_vf(9, VF1)

    def test_lower_vf_lowers_power_and_speed(self, cpu_workload):
        def run(vf):
            p = Platform(FX8320_SPEC, seed=3, initial_temperature=320.0)
            p.set_all_vf(vf)
            p.set_assignment(
                CoreAssignment.packed([make_cpu_bound("c%d" % i) for i in range(8)])
            )
            samples = p.run(10)
            return (
                samples[-1].measured_power,
                sum(s.total_instructions() for s in samples),
            )

        p5, i5 = run(VF5)
        p1, i1 = run(VF1)
        assert p1 < p5 / 2
        assert i1 < i5


class TestPowerGating:
    def test_pg_cuts_idle_power(self):
        on = Platform(FX8320_SPEC, seed=4, power_gating=True)
        off = Platform(FX8320_SPEC, seed=4, power_gating=False)
        p_on = on.run(5)[-1].measured_power
        p_off = off.run(5)[-1].measured_power
        assert p_on < p_off / 3

    def test_pg_does_not_touch_busy_cus(self, cpu_workload):
        on = Platform(FX8320_SPEC, seed=4, power_gating=True, initial_temperature=320.0)
        on.set_assignment(
            CoreAssignment.packed([make_cpu_bound("c%d" % i) for i in range(8)])
        )
        off = Platform(FX8320_SPEC, seed=4, power_gating=False, initial_temperature=320.0)
        off.set_assignment(
            CoreAssignment.packed([make_cpu_bound("c%d" % i) for i in range(8)])
        )
        # All CUs busy: gating changes nothing (Figure 4's 4CU bars).
        p_on = on.run(5)[-1].true_power
        p_off = off.run(5)[-1].true_power
        assert p_on == pytest.approx(p_off, rel=0.03)


class TestFixedWork:
    def test_run_until_finished(self, platform):
        wl = make_cpu_bound("finite").with_budget(5e8)
        platform.set_assignment(CoreAssignment.packed([wl]))
        samples = platform.run_until_finished(1000)
        assert platform.all_finished
        assert 0 in platform.completion_times()
        total = sum(s.instructions[0] for s in samples)
        assert total == pytest.approx(5e8, rel=1e-6)

    def test_run_until_finished_times_out(self, platform, cpu_workload):
        platform.set_assignment(CoreAssignment.packed([cpu_workload]))
        with pytest.raises(RuntimeError):
            platform.run_until_finished(3)


class TestNBScalingHardware:
    def test_nb_lo_slows_memory_workloads(self):
        def run(nb_vf):
            p = Platform(FX8320_SPEC, seed=6, nb_vf=nb_vf, initial_temperature=320.0)
            p.set_assignment(
                CoreAssignment.packed([make_memory_bound("m%d" % i) for i in range(4)])
            )
            return sum(s.total_instructions() for s in p.run(10))

        assert run(NB_VF_LO) < run(None)

    def test_temperature_rises_under_load(self):
        p = Platform(FX8320_SPEC, seed=7)
        p.set_assignment(
            CoreAssignment.packed([make_cpu_bound("c%d" % i) for i in range(8)])
        )
        samples = p.run(30)
        assert samples[-1].temperature > samples[0].temperature + 2.0


class TestVFTransitionCost:
    def make(self, penalty):
        p = Platform(
            FX8320_SPEC, seed=8, initial_temperature=320.0,
            vf_transition_penalty_s=penalty,
        )
        p.set_assignment(
            CoreAssignment.packed([make_cpu_bound("c%d" % i) for i in range(8)])
        )
        return p

    def test_default_penalty_is_free(self):
        a = self.make(0.0)
        a.run(2)
        a.set_all_vf(VF1)
        a.set_all_vf(VF5)  # back again: no net change, no cost either way
        with_switch = a.step().total_instructions()
        b = self.make(0.0)
        b.run(2)
        without = b.step().total_instructions()
        assert with_switch == pytest.approx(without)

    def test_transition_stalls_first_slice(self):
        penalized = self.make(0.010)  # 10 ms of a 20 ms slice
        free = self.make(0.0)
        for p in (penalized, free):
            p.run(2)
            p.set_all_vf(VF1)
        lost = penalized.step().total_instructions()
        kept = free.step().total_instructions()
        # 10 ms lost out of 200 ms -> ~5% fewer instructions.
        assert lost < kept * 0.97

    def test_penalty_applies_once(self):
        p = self.make(0.010)
        p.run(2)
        p.set_all_vf(VF1)
        p.step()  # the stalled interval
        recovered = p.step().total_instructions()
        q = self.make(0.0)
        q.run(2)
        q.set_all_vf(VF1)
        q.step()
        baseline = q.step().total_instructions()
        # The stalled run sits at a slightly earlier program position,
        # so allow phase-mix slack; the 5% stall must not persist.
        assert recovered == pytest.approx(baseline, rel=0.01)

    def test_unchanged_vf_costs_nothing(self):
        p = self.make(0.010)
        p.run(2)
        p.set_all_vf(VF5)  # same state as current
        a = p.step().total_instructions()
        q = self.make(0.010)
        q.run(2)
        b = q.step().total_instructions()
        assert a == pytest.approx(b)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            Platform(FX8320_SPEC, vf_transition_penalty_s=-1.0)


class TestThreadMigration:
    def test_migration_moves_progress(self, platform, cpu_workload):
        platform.set_assignment(CoreAssignment.packed([cpu_workload]))
        platform.run(3)
        done_before = platform.cores[0].instructions_done
        assert done_before > 0
        platform.migrate(0, 5)
        assert platform.cores[0].workload is None
        assert platform.cores[5].instructions_done == done_before
        sample = platform.step()
        assert sample.instructions[5] > 0
        assert sample.instructions[0] == 0

    def test_migration_preserves_total_work(self, platform):
        from repro.workloads.synthetic import make_cpu_bound

        wl = make_cpu_bound("mig").with_budget(3e8)
        platform.set_assignment(CoreAssignment.packed([wl]))
        platform.run(2)
        done_before = platform.cores[0].instructions_done
        platform.migrate(0, 7)
        samples = platform.run_until_finished(1000)
        migrated_work = sum(s.instructions[7] for s in samples)
        assert platform.all_finished
        assert 7 in platform.completion_times()
        # The destination finishes exactly the remaining budget.
        assert done_before + migrated_work == pytest.approx(3e8, rel=1e-6)

    def test_migration_enables_gating(self, cpu_workload):
        # Packing both threads of CU0+CU1 onto CU0 lets PG reclaim CU1.
        from repro.workloads.synthetic import make_cpu_bound

        p = Platform(FX8320_SPEC, seed=9, power_gating=True,
                     initial_temperature=320.0)
        a, b = make_cpu_bound("t0"), make_cpu_bound("t1")
        p.set_assignment(CoreAssignment.one_per_cu(FX8320_SPEC, [a, b]))
        spread_power = p.run(8)[-1].true_power
        p.migrate(2, 1)  # CU1's thread joins CU0's second core
        packed_power = p.run(8)[-1].true_power
        assert packed_power < spread_power - 3.0

    def test_migration_validation(self, platform, cpu_workload):
        platform.set_assignment(CoreAssignment.packed([cpu_workload]))
        with pytest.raises(ValueError):
            platform.migrate(3, 5)  # source idle
        with pytest.raises(ValueError):
            platform.migrate(0, 9)  # out of range
        platform.migrate(0, 0)  # no-op allowed
        platform.set_assignment(
            CoreAssignment.packed([cpu_workload, cpu_workload])
        )
        with pytest.raises(ValueError):
            platform.migrate(0, 1)  # destination occupied
