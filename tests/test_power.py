"""Unit tests for the ground-truth power model."""

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.power import CoreActivity, GroundTruthPower
from repro.hardware.vfstates import FX8320_VF_TABLE, NB_VF_HI


@pytest.fixture
def gt():
    return GroundTruthPower(FX8320_SPEC)


VF5 = FX8320_VF_TABLE.by_index(5)
VF1 = FX8320_VF_TABLE.by_index(1)


def busy_activity(scale=1.0):
    return CoreActivity(
        busy=True,
        uops=4e9 * scale,
        fpu_ops=4e8 * scale,
        ic_fetches=1e9 * scale,
        dc_accesses=1.5e9 * scale,
        l2_requests=1e8 * scale,
        branches=5e8 * scale,
        mispredicts=1e7 * scale,
        l3_accesses=1e7 * scale,
        dram_accesses=5e6 * scale,
        hidden=2e8 * scale,
    )


class TestLeakage:
    def test_leakage_at_reference_point(self, gt):
        spec = FX8320_SPEC
        value = gt.cu_leakage(spec.leak_ref_voltage, spec.leak_ref_temperature)
        assert value == pytest.approx(spec.cu_leakage_ref)

    def test_leakage_grows_with_temperature(self, gt):
        assert gt.cu_leakage(1.32, 340.0) > gt.cu_leakage(1.32, 320.0)

    def test_leakage_grows_with_voltage(self, gt):
        assert gt.cu_leakage(1.32, 330.0) > gt.cu_leakage(0.9, 330.0)

    def test_low_voltage_collapses_leakage(self, gt):
        # The FX-class story: VF1 leakage is a small fraction of VF5's.
        ratio = gt.cu_leakage(VF1.voltage, 330.0) / gt.cu_leakage(VF5.voltage, 330.0)
        assert ratio < 0.3

    def test_nb_leakage_independent_of_core_voltage(self, gt):
        assert gt.nb_leakage(NB_VF_HI.voltage, 330.0) > 0


class TestActivityPower:
    def test_core_dynamic_zero_for_idle_activity(self, gt):
        assert gt.core_dynamic(CoreActivity(), 1.32) == 0.0

    def test_core_dynamic_scales_with_v_squared(self, gt):
        act = busy_activity()
        ratio = gt.core_dynamic(act, 1.0) / gt.core_dynamic(act, 2.0)
        assert ratio == pytest.approx(0.25)

    def test_core_dynamic_linear_in_activity(self, gt):
        assert gt.core_dynamic(busy_activity(2.0), 1.32) == pytest.approx(
            2.0 * gt.core_dynamic(busy_activity(1.0), 1.32)
        )

    def test_clock_power_scales_with_fv2(self, gt):
        assert gt.core_clock(VF5) > gt.core_clock(VF1)


class TestChipPower:
    def idle_activities(self):
        return [CoreActivity() for _ in range(FX8320_SPEC.num_cores)]

    def test_idle_pg_off_includes_everything(self, gt):
        breakdown = gt.chip_power(
            cu_vfs=[VF5] * 4,
            nb_vf=NB_VF_HI,
            temperature=330.0,
            activities=self.idle_activities(),
            nb_dynamic=0.0,
            power_gating=False,
        )
        assert breakdown.cu_leakage > 0
        assert breakdown.nb_leakage > 0
        assert breakdown.base == FX8320_SPEC.base_power
        assert breakdown.core_dynamic == 0.0

    def test_idle_pg_on_collapses_to_base(self, gt):
        power = gt.idle_chip_power(VF5, NB_VF_HI, 330.0, power_gating=True)
        assert power == pytest.approx(FX8320_SPEC.base_power)

    def test_pg_gates_only_idle_cus(self, gt):
        activities = self.idle_activities()
        activities[0] = busy_activity()
        b = gt.chip_power(
            cu_vfs=[VF5] * 4,
            nb_vf=NB_VF_HI,
            temperature=330.0,
            activities=activities,
            nb_dynamic=1.0,
            power_gating=True,
        )
        one_cu_leak = gt.cu_leakage(VF5.voltage, 330.0)
        assert b.cu_leakage == pytest.approx(one_cu_leak)
        assert b.nb_leakage > 0  # NB awake while any CU is

    def test_pg_disabled_keeps_all_cus(self, gt):
        activities = self.idle_activities()
        activities[0] = busy_activity()
        b = gt.chip_power(
            cu_vfs=[VF5] * 4,
            nb_vf=NB_VF_HI,
            temperature=330.0,
            activities=activities,
            nb_dynamic=0.0,
            power_gating=False,
        )
        assert b.cu_leakage == pytest.approx(4 * gt.cu_leakage(VF5.voltage, 330.0))

    def test_breakdown_total_is_sum_of_parts(self, gt):
        activities = self.idle_activities()
        activities[0] = busy_activity()
        b = gt.chip_power(
            cu_vfs=[VF5] * 4,
            nb_vf=NB_VF_HI,
            temperature=330.0,
            activities=activities,
            nb_dynamic=2.0,
            power_gating=False,
        )
        parts = (
            b.base + b.cu_leakage + b.cu_active_idle + b.core_clock
            + b.core_dynamic + b.nb_leakage + b.nb_active_idle + b.nb_dynamic
            + b.housekeeping
        )
        assert b.total == pytest.approx(parts)
        assert b.nb_total == pytest.approx(b.nb_leakage + b.nb_active_idle + b.nb_dynamic)

    def test_full_load_in_fx_envelope(self, gt):
        b = gt.chip_power(
            cu_vfs=[VF5] * 4,
            nb_vf=NB_VF_HI,
            temperature=335.0,
            activities=[busy_activity() for _ in range(8)],
            nb_dynamic=3.0,
            power_gating=False,
        )
        # A loaded FX-8320 draws roughly 100-160 W on the CPU rail.
        assert 90.0 < b.total < 170.0

    def test_idle_envelope(self, gt):
        power = gt.idle_chip_power(VF5, NB_VF_HI, 320.0, power_gating=False)
        assert 30.0 < power < 80.0
        low = gt.idle_chip_power(VF1, NB_VF_HI, 310.0, power_gating=False)
        assert low < power / 2

    def test_shape_validation(self, gt):
        with pytest.raises(ValueError):
            gt.chip_power(
                cu_vfs=[VF5] * 3,  # wrong CU count
                nb_vf=NB_VF_HI,
                temperature=330.0,
                activities=self.idle_activities(),
                nb_dynamic=0.0,
                power_gating=False,
            )
        with pytest.raises(ValueError):
            gt.chip_power(
                cu_vfs=[VF5] * 4,
                nb_vf=NB_VF_HI,
                temperature=330.0,
                activities=[CoreActivity()] * 3,  # wrong core count
                nb_dynamic=0.0,
                power_gating=False,
            )
