"""Unit tests for the power-capping controllers and metrics."""

import pytest

from repro.dvfs.governor import ControlledRun
from repro.dvfs.power_capping import (
    CappingResult,
    ExternalBudget,
    IterativePowerCapper,
    evaluate_capping,
    evaluate_power_series,
    square_wave_cap,
)
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import IntervalSample
from repro.hardware.vfstates import FX8320_VF_TABLE


def fake_sample(power: float) -> IntervalSample:
    return IntervalSample(
        index=0,
        time=0.2,
        cu_vfs=[FX8320_VF_TABLE.fastest] * 4,
        nb_vf=FX8320_SPEC.nb_vf,
        power_gating=False,
        power_samples=[power] * 10,
        measured_power=power,
        temperature=320.0,
        core_events=[],
        true_core_events=[],
        instructions=[],
        true_power=power,
    )


class TestSquareWave:
    def test_alternates(self):
        cap = square_wave_cap(90.0, 50.0, 10)
        assert cap(0) == 90.0
        assert cap(9) == 90.0
        assert cap(10) == 50.0
        assert cap(20) == 90.0

    def test_validation(self):
        with pytest.raises(ValueError):
            square_wave_cap(90.0, 50.0, 0)


class TestIterativeCapper:
    def make(self, cap=60.0):
        return IterativePowerCapper(FX8320_VF_TABLE, 4, cap)

    def test_lowers_one_cu_when_over(self):
        capper = self.make(cap=60.0)
        decision = capper.decide(fake_sample(80.0))
        indices = sorted(vf.index for vf in decision)
        assert indices == [4, 5, 5, 5]  # exactly one CU stepped down

    def test_raises_one_cu_when_far_under(self):
        capper = self.make(cap=60.0)
        capper._assignment = [FX8320_VF_TABLE.by_index(2)] * 4
        decision = capper.decide(fake_sample(30.0))
        indices = sorted(vf.index for vf in decision)
        assert indices == [2, 2, 2, 3]

    def test_holds_inside_band(self):
        capper = self.make(cap=60.0)
        capper._assignment = [FX8320_VF_TABLE.by_index(3)] * 4
        decision = capper.decide(fake_sample(58.0))
        assert [vf.index for vf in decision] == [3, 3, 3, 3]

    def test_needs_many_steps_for_big_swing(self):
        # From all-VF5 to all-VF1 takes 16 single-step decisions: the
        # 14x responsiveness gap of Figure 7.
        capper = self.make(cap=0.0)  # unreachable cap: always step down
        steps = 0
        while any(vf.index > 1 for vf in capper._assignment):
            capper.decide(fake_sample(100.0))
            steps += 1
            assert steps < 50
        assert steps == 16

    def test_reset_restores_fastest(self):
        capper = self.make()
        capper.decide(fake_sample(100.0))
        capper.reset()
        assert all(vf.index == 5 for vf in capper._assignment)


class TestEvaluateCapping:
    def run_with_powers(self, powers):
        run = ControlledRun()
        run.samples = [fake_sample(p) for p in powers]
        return run

    def test_settle_counts_intervals_over_cap(self):
        cap = square_wave_cap(90.0, 50.0, 3)
        # Intervals 0-2 capped at 90 (all under); 3-5 capped at 50.
        powers = [80.0, 80.0, 80.0, 80.0, 60.0, 45.0]
        result = evaluate_capping(self.run_with_powers(powers), cap)
        assert result.settle_intervals == [2]
        assert result.worst_settle == 2

    def test_immediate_settle_is_zero(self):
        cap = square_wave_cap(90.0, 50.0, 2)
        powers = [80.0, 80.0, 45.0, 45.0]
        result = evaluate_capping(self.run_with_powers(powers), cap)
        assert result.settle_intervals == [0]

    def test_violation_rate(self):
        result = evaluate_capping(
            self.run_with_powers([100.0, 80.0, 80.0, 80.0]),
            lambda _i: 90.0,
        )
        assert result.violation_rate == pytest.approx(0.25)

    def test_adherence_perfect_tracking(self):
        result = evaluate_capping(
            self.run_with_powers([90.0, 90.0]), lambda _i: 90.0
        )
        assert result.adherence == pytest.approx(1.0)

    def test_mean_settle(self):
        r = CappingResult(
            settle_intervals=[1, 3],
            violation_rate=0.0,
            adherence=1.0,
            total_instructions=0.0,
        )
        assert r.mean_settle == 2.0
        empty = CappingResult([], 0.0, 1.0, 0.0)
        assert empty.mean_settle == 0.0
        assert empty.worst_settle == 0


class TestExternalBudget:
    def test_starts_unbounded(self):
        budget = ExternalBudget()
        assert budget.value == float("inf")
        assert budget(0) == float("inf")

    def test_set_changes_every_step(self):
        budget = ExternalBudget(100.0)
        assert budget(3) == 100.0
        budget.set(42.5)
        assert budget.value == 42.5
        assert budget(0) == budget(99) == 42.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ExternalBudget().set(-1.0)


class TestEvaluatePowerSeries:
    def test_matches_evaluate_capping(self):
        cap = square_wave_cap(90.0, 50.0, 3)
        powers = [80.0, 80.0, 80.0, 80.0, 60.0, 45.0]
        run = ControlledRun()
        run.samples = [fake_sample(p) for p in powers]
        via_run = evaluate_capping(run, cap)
        direct = evaluate_power_series(
            powers, [cap(i) for i in range(len(powers))],
            run.total_instructions(),
        )
        assert direct == via_run

    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            evaluate_power_series([80.0, 80.0], [90.0], 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            evaluate_power_series([], [], 0.0)


class TestPPEPCapperEdgeCases:
    def _stepped_sample(self, quick_ctx, vf):
        from repro.hardware.platform import CoreAssignment, Platform
        from repro.workloads.suites import spec_program

        platform = Platform(
            quick_ctx.spec, seed=31, initial_temperature=320.0
        )
        platform.set_assignment(
            CoreAssignment.one_per_cu(
                quick_ctx.spec, [spec_program("458")] * 4
            )
        )
        platform.set_all_vf(vf)
        return platform.step()

    def test_unachievable_cap_pins_floor_and_never_raises(self, quick_ctx):
        """A cap below the slowest state's power: every CU lands at the
        floor, and the climb-back refinement must not raise anything."""
        from repro.dvfs.power_capping import PPEPPowerCapper

        capper = PPEPPowerCapper(quick_ctx.full_ppep, 5.0)
        sample = self._stepped_sample(
            quick_ctx, quick_ctx.spec.vf_table.fastest
        )
        slowest = quick_ctx.spec.vf_table.slowest.index
        for _ in range(3):  # bias feedback must not unpin the floor
            decision = capper.decide(sample)
            assert [vf.index for vf in decision] == [slowest] * 4

    def test_generous_cap_reaches_fastest_in_one_step(self, quick_ctx):
        """A cap above max chip power: one decision jumps straight to
        the fastest state even from a crawling start."""
        from repro.dvfs.power_capping import PPEPPowerCapper

        capper = PPEPPowerCapper(quick_ctx.full_ppep, 500.0)
        sample = self._stepped_sample(
            quick_ctx, quick_ctx.spec.vf_table.slowest
        )
        fastest = quick_ctx.spec.vf_table.fastest.index
        decision = capper.decide(sample)
        assert [vf.index for vf in decision] == [fastest] * 4


class TestUniformCapper:
    def test_uniform_decisions(self, quick_ctx):
        from repro.dvfs.power_capping import UniformPowerCapper
        from repro.dvfs.governor import run_controlled
        from repro.hardware.platform import CoreAssignment, Platform
        from repro.workloads.suites import spec_program

        platform = Platform(
            quick_ctx.spec, seed=21, initial_temperature=320.0
        )
        platform.set_assignment(
            CoreAssignment.one_per_cu(
                quick_ctx.spec, [spec_program("458")] * 4
            )
        )
        capper = UniformPowerCapper(quick_ctx.full_ppep, 50.0)
        run = run_controlled(platform, capper, 5,
                             initial_vf=quick_ctx.spec.vf_table.fastest)
        for decision in run.decisions:
            assert len({vf.index for vf in decision}) == 1
        # After actuation, power respects the cap (with model slack).
        assert all(p < 50.0 * 1.1 for p in run.measured_powers[2:])

    def test_per_cu_planes_beat_uniform_under_cap(self, quick_ctx):
        """The paper's per-CU-plane assumption buys throughput: mixed
        assignments fit the cap more tightly than uniform ones."""
        from repro.dvfs.power_capping import PPEPPowerCapper, UniformPowerCapper
        from repro.dvfs.governor import run_controlled
        from repro.hardware.platform import CoreAssignment, Platform
        from repro.workloads.suites import spec_program

        def throughput(capper_cls):
            platform = Platform(
                quick_ctx.spec, seed=22, initial_temperature=320.0
            )
            platform.set_assignment(
                CoreAssignment.one_per_cu(
                    quick_ctx.spec, [spec_program("458")] * 4
                )
            )
            capper = capper_cls(quick_ctx.full_ppep, 55.0)
            run = run_controlled(platform, capper, 12,
                                 initial_vf=quick_ctx.spec.vf_table.slowest)
            return sum(s.total_instructions() for s in run.samples[4:])

        assert throughput(PPEPPowerCapper) >= throughput(UniformPowerCapper) * 0.999
