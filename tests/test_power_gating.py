"""Unit tests for the Section IV-D idle power decomposition."""

import pytest

from repro.core.power_gating import (
    IdlePowerDecomposition,
    PGAwareIdleModel,
    decompose_from_sweep,
)
from repro.hardware.vfstates import FX8320_VF_TABLE

VF5 = FX8320_VF_TABLE.by_index(5)
VF1 = FX8320_VF_TABLE.by_index(1)


def synthetic_sweep(p_cu=6.0, p_nb=4.0, p_base=3.0, busy_power=9.0, num_cus=4):
    """The Figure 4 bars implied by a known decomposition."""
    pg_off = []
    pg_on = []
    chip_idle = num_cus * p_cu + p_nb + p_base
    for k in range(num_cus + 1):
        pg_off.append(chip_idle + k * busy_power)
        if k == 0:
            pg_on.append(p_base)
        else:
            pg_on.append(k * p_cu + p_nb + p_base + k * busy_power)
    return pg_off, pg_on


class TestDecomposition:
    def test_recovers_known_components(self):
        pg_off, pg_on = synthetic_sweep()
        d = decompose_from_sweep(VF5, pg_off, pg_on, 4)
        assert d.p_cu == pytest.approx(6.0)
        assert d.p_nb == pytest.approx(4.0)
        assert d.p_base == pytest.approx(3.0)

    def test_negative_gaps_clamped(self):
        pg_off, pg_on = synthetic_sweep()
        pg_on = [v + 100.0 for v in pg_on]  # noise pushed PG-on above
        d = decompose_from_sweep(VF5, pg_off, pg_on, 4)
        assert d.p_cu == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            decompose_from_sweep(VF5, [1.0, 2.0], [1.0, 2.0], 4)

    def test_component_validation(self):
        with pytest.raises(ValueError):
            IdlePowerDecomposition(vf=VF5, p_cu=-1.0, p_nb=0.0, p_base=0.0)


@pytest.fixture
def model():
    decomps = {
        5: IdlePowerDecomposition(vf=VF5, p_cu=6.0, p_nb=4.0, p_base=3.0),
        1: IdlePowerDecomposition(vf=VF1, p_cu=1.0, p_nb=4.0, p_base=3.0),
    }
    return PGAwareIdleModel(decomps, num_cus=4, cores_per_cu=2)


class TestPerCoreAttribution:
    def test_eq7_single_busy_core(self, model):
        # m = 1, n = 1: the lone core owns its CU plus NB plus base.
        value = model.per_core_idle(VF5, busy_in_cu=1, busy_total=1, power_gating=True)
        assert value == pytest.approx(6.0 + 4.0 + 3.0)

    def test_eq7_sharing(self, model):
        # m = 2, n = 8: CU split two ways, NB+base split eight ways.
        value = model.per_core_idle(VF5, busy_in_cu=2, busy_total=8, power_gating=True)
        assert value == pytest.approx(6.0 / 2 + 7.0 / 8)

    def test_eq8_pg_disabled(self, model):
        # All four CUs stay awake regardless of who is busy.
        value = model.per_core_idle(VF5, busy_in_cu=1, busy_total=2, power_gating=False)
        assert value == pytest.approx((4 * 6.0 + 4.0 + 3.0) / 2)

    def test_eq7_sums_to_chip_idle(self, model):
        # Per-core attributions over all busy cores reconstruct the
        # chip idle power exactly (2 busy CUs, 2 busy cores each).
        total = 4 * model.per_core_idle(VF5, busy_in_cu=2, busy_total=4, power_gating=True)
        assert total == pytest.approx(model.chip_idle(VF5, busy_cus=2, power_gating=True))

    def test_attribution_validation(self, model):
        with pytest.raises(ValueError):
            model.per_core_idle(VF5, busy_in_cu=0, busy_total=1, power_gating=True)
        with pytest.raises(ValueError):
            model.per_core_idle(VF5, busy_in_cu=3, busy_total=2, power_gating=True)


class TestChipIdle:
    def test_fully_gated_is_base(self, model):
        assert model.chip_idle(VF5, 0, power_gating=True) == pytest.approx(3.0)

    def test_partially_gated(self, model):
        assert model.chip_idle(VF5, 2, power_gating=True) == pytest.approx(
            2 * 6.0 + 4.0 + 3.0
        )

    def test_pg_off_always_full(self, model):
        for busy in (0, 2, 4):
            assert model.chip_idle(VF5, busy, power_gating=False) == pytest.approx(
                4 * 6.0 + 4.0 + 3.0
            )

    def test_vf_dependence(self, model):
        assert model.chip_idle(VF1, 4, True) < model.chip_idle(VF5, 4, True)

    def test_nb_idle_accessor(self, model):
        assert model.nb_idle(VF5) == pytest.approx(4.0)

    def test_unknown_vf_raises(self, model):
        vf3 = FX8320_VF_TABLE.by_index(3)
        with pytest.raises(KeyError):
            model.chip_idle(vf3, 1, True)

    def test_busy_range_checked(self, model):
        with pytest.raises(ValueError):
            model.chip_idle(VF5, 5, True)

    def test_needs_decompositions(self):
        with pytest.raises(ValueError):
            PGAwareIdleModel({}, num_cus=4, cores_per_cu=2)
