"""Tests for the PPEP manager and trainer (end-to-end on a tiny set)."""

import pytest

from repro.analysis.trace import TraceLibrary
from repro.core.ppep import PPEP, PPEPTrainer, stable_seed
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.workloads.suites import spec_combinations


@pytest.fixture(scope="module")
def tiny_setup():
    """A PPEP trained on four combinations with short traces."""
    trainer = PPEPTrainer(FX8320_SPEC, bench_intervals=8, cool_intervals=100)
    library = TraceLibrary()
    combos = spec_combinations()[:4]
    ppep = trainer.train(combos, library)
    return trainer, library, combos, ppep


@pytest.fixture(scope="module")
def busy_sample():
    combo = spec_combinations()[5]
    platform = Platform(FX8320_SPEC, seed=99, initial_temperature=320.0)
    platform.set_assignment(combo.assignment(FX8320_SPEC))
    platform.run(2)
    return platform.step()


class TestStableSeed:
    def test_reproducible(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_distinct(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_fits_32_bits(self):
        assert 0 <= stable_seed("x", "y", 3) < 2 ** 32


class TestTrainer:
    def test_produces_all_components(self, tiny_setup):
        _trainer, _library, _combos, ppep = tiny_setup
        assert ppep.idle_model is not None
        assert len(ppep.dynamic_model.weights) == 9
        assert ppep.pg_model is not None  # FX-8320 supports PG

    def test_alpha_near_physical_value(self, tiny_setup):
        # Ground-truth event energies scale with V^2; the derived
        # exponent should sit near 2.
        _trainer, _library, _combos, ppep = tiny_setup
        assert 1.5 < ppep.dynamic_model.alpha < 3.0

    def test_weights_nonnegative(self, tiny_setup):
        _trainer, _library, _combos, ppep = tiny_setup
        assert all(w >= 0 for w in ppep.dynamic_model.weights)

    def test_trace_caching(self, tiny_setup):
        trainer, library, combos, _ppep = tiny_setup
        before = len(library)
        trainer.collect_trace(combos[0], FX8320_SPEC.vf_table.fastest, library)
        assert len(library) == before  # cache hit, nothing re-simulated

    def test_trace_is_warmed_up(self, tiny_setup):
        trainer, library, combos, _ppep = tiny_setup
        trace = trainer.collect_trace(
            combos[0], FX8320_SPEC.vf_table.fastest, library
        )
        assert len(trace) == trainer.BENCH_INTERVALS
        assert trace[0].index == trainer.WARMUP

    def test_interval_overrides_validated(self):
        with pytest.raises(ValueError):
            PPEPTrainer(FX8320_SPEC, bench_intervals=1)
        with pytest.raises(ValueError):
            PPEPTrainer(FX8320_SPEC, cool_intervals=5)


class TestManager:
    def test_analyze_covers_all_vf_states(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        snapshot = ppep.analyze(busy_sample)
        assert set(snapshot.predictions) == {1, 2, 3, 4, 5}
        ordered = snapshot.all_predictions()
        assert [p.vf.index for p in ordered] == [5, 4, 3, 2, 1]

    def test_current_estimate_close_to_measured(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        estimate = ppep.estimate_current(busy_sample)
        assert estimate == pytest.approx(busy_sample.measured_power, rel=0.15)

    def test_power_prediction_monotone_in_vf(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        snapshot = ppep.analyze(busy_sample)
        powers = [p.chip_power for p in snapshot.all_predictions()]
        assert powers == sorted(powers, reverse=True)

    def test_performance_prediction_monotone_in_vf(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        snapshot = ppep.analyze(busy_sample)
        rates = [p.instructions_per_second for p in snapshot.all_predictions()]
        assert rates == sorted(rates, reverse=True)

    def test_self_prediction_matches_estimate(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        snapshot = ppep.analyze(busy_sample)
        vf5 = FX8320_SPEC.vf_table.fastest
        assert snapshot.prediction(vf5).chip_power == pytest.approx(
            snapshot.current_estimate, rel=0.02
        )

    def test_predict_mixed_interpolates(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        states = ppep.core_states(busy_sample)
        table = FX8320_SPEC.vf_table
        uniform_hi, _ = ppep.predict_mixed(
            states, busy_sample.temperature, [table.fastest] * 4, False
        )
        uniform_lo, _ = ppep.predict_mixed(
            states, busy_sample.temperature, [table.slowest] * 4, False
        )
        mixed, _ = ppep.predict_mixed(
            states,
            busy_sample.temperature,
            [table.fastest, table.fastest, table.slowest, table.slowest],
            False,
        )
        assert uniform_lo < mixed < uniform_hi

    def test_predict_mixed_shape_checked(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        states = ppep.core_states(busy_sample)
        with pytest.raises(ValueError):
            ppep.predict_mixed(
                states, 320.0, [FX8320_SPEC.vf_table.fastest] * 3, False
            )

    def test_nb_power_below_chip_power(self, tiny_setup, busy_sample):
        ppep = tiny_setup[3]
        snapshot = ppep.analyze(busy_sample)
        for p in snapshot.all_predictions():
            assert 0.0 <= p.nb_power < p.chip_power


class TestPGSweepCollection:
    def test_sweep_shape(self, tiny_setup):
        trainer = tiny_setup[0]
        pg_off, pg_on = trainer.collect_pg_sweep(FX8320_SPEC.vf_table.slowest)
        assert len(pg_off) == 5 and len(pg_on) == 5
        # PG-on idle is far below PG-off idle; 4-CU bars nearly equal.
        assert pg_on[0] < pg_off[0] / 2
        assert pg_on[4] == pytest.approx(pg_off[4], rel=0.05)

    def test_cooling_covers_a_wide_range(self, tiny_setup):
        trainer = tiny_setup[0]
        temps, powers = trainer.collect_cooling(FX8320_SPEC.vf_table.by_index(3))
        assert max(temps) - min(temps) > 10.0
        assert len(temps) == trainer.COOL_INTERVALS
