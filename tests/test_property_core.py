"""Property-based tests (hypothesis) on core data structures and model
invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpi_model import CPIModel, CPISample
from repro.hardware.events import Event, EventVector, NUM_EVENTS
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.thermal import ThermalModel

finite_counts = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    min_size=NUM_EVENTS,
    max_size=NUM_EVENTS,
)

frequencies = st.floats(min_value=0.5, max_value=5.0, allow_nan=False)
cpis = st.floats(min_value=0.3, max_value=20.0, allow_nan=False)


class TestEventVectorProperties:
    @given(finite_counts, finite_counts)
    def test_addition_commutes(self, a, b):
        va, vb = EventVector(a), EventVector(b)
        assert va + vb == vb + va

    @given(finite_counts)
    def test_zero_is_identity(self, a):
        va = EventVector(a)
        assert va + EventVector.zeros() == va

    @given(finite_counts, st.floats(min_value=0.0, max_value=1e6))
    def test_scaling_distributes(self, a, s):
        va = EventVector(a)
        left = (va + va) * s
        right = va * s + va * s
        for x, y in zip(left, right):
            assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9)

    @given(finite_counts)
    def test_per_instruction_ratio_consistency(self, a):
        va = EventVector(a)
        per_inst = va.per_instruction()
        if va.instructions > 0:
            for event in Event:
                expected = va[event] / va.instructions
                assert math.isclose(
                    per_inst[event], expected, rel_tol=1e-12, abs_tol=1e-12
                )
        else:
            assert per_inst == EventVector.zeros()


class TestEquationOneProperties:
    @given(cpis, st.floats(min_value=0.0, max_value=1.0), frequencies, frequencies)
    def test_prediction_roundtrip(self, cpi, mem_fraction, f_a, f_b):
        """Predicting A->B then B->A returns the original CPI."""
        mcpi = cpi * mem_fraction
        sample_a = CPISample(cpi=cpi, mcpi=mcpi, frequency_ghz=f_a)
        cpi_b = CPIModel.predict_cpi(sample_a, f_b)
        mcpi_b = CPIModel.predict_mcpi(sample_a, f_b)
        sample_b = CPISample(cpi=cpi_b, mcpi=mcpi_b, frequency_ghz=f_b)
        back = CPIModel.predict_cpi(sample_b, f_a)
        assert math.isclose(back, cpi, rel_tol=1e-9)

    @given(cpis, st.floats(min_value=0.0, max_value=1.0), frequencies, frequencies)
    def test_cpi_monotone_in_frequency(self, cpi, mem_fraction, f_lo, f_hi):
        if f_lo > f_hi:
            f_lo, f_hi = f_hi, f_lo
        sample = CPISample(cpi=cpi, mcpi=cpi * mem_fraction, frequency_ghz=2.0)
        assert CPIModel.predict_cpi(sample, f_lo) <= CPIModel.predict_cpi(
            sample, f_hi
        ) + 1e-12

    @given(cpis, st.floats(min_value=0.0, max_value=1.0), frequencies)
    def test_speedup_bounded_by_frequency_ratio(self, cpi, mem_fraction, f_target):
        sample = CPISample(cpi=cpi, mcpi=cpi * mem_fraction, frequency_ghz=2.0)
        speedup = CPIModel.speedup(sample, f_target)
        ratio = f_target / 2.0
        lo, hi = min(1.0, ratio), max(1.0, ratio)
        assert lo - 1e-9 <= speedup <= hi + 1e-9

    @given(cpis, frequencies, frequencies)
    def test_time_per_instruction_constant_when_fully_memory_bound(
        self, cpi, f_a, f_b
    ):
        sample = CPISample(cpi=cpi, mcpi=cpi, frequency_ghz=f_a)
        t_b = CPIModel.predict_time_per_instruction_ns(sample, f_b)
        t_a = cpi / f_a
        assert math.isclose(t_a, t_b, rel_tol=1e-9)


class TestThermalProperties:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.0, max_value=200.0),
        st.floats(min_value=0.001, max_value=1000.0),
        st.floats(min_value=280.0, max_value=400.0),
    )
    def test_step_moves_toward_steady_state(self, power, dt, start):
        thermal = ThermalModel(FX8320_SPEC, initial_temperature=start)
        target = thermal.steady_state(power)
        before_gap = abs(start - target)
        thermal.step(power, dt)
        after_gap = abs(thermal.temperature - target)
        assert after_gap <= before_gap + 1e-9

    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.0, max_value=200.0),
        st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=5),
    )
    def test_splitting_a_step_changes_nothing(self, power, dts):
        a = ThermalModel(FX8320_SPEC, initial_temperature=330.0)
        b = ThermalModel(FX8320_SPEC, initial_temperature=330.0)
        a.step(power, sum(dts))
        for dt in dts:
            b.step(power, dt)
        assert math.isclose(a.temperature, b.temperature, rel_tol=1e-12)
