"""Property-based tests on the power models and attribution math."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpi_model import segment_cycles
from repro.core.power_gating import IdlePowerDecomposition, PGAwareIdleModel
from repro.dvfs.nb_scaling import NBScalingModel, PerVFRunData
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.northbridge import NorthBridge
from repro.hardware.power import GroundTruthPower
from repro.hardware.vfstates import FX8320_VF_TABLE

voltages = st.floats(min_value=0.85, max_value=1.40)
temperatures = st.floats(min_value=290.0, max_value=360.0)


class TestGroundTruthPowerProperties:
    gt = GroundTruthPower(FX8320_SPEC)

    @given(voltages, voltages, temperatures)
    def test_leakage_monotone_in_voltage(self, v_lo, v_hi, temp):
        if v_lo > v_hi:
            v_lo, v_hi = v_hi, v_lo
        assert self.gt.cu_leakage(v_lo, temp) <= self.gt.cu_leakage(v_hi, temp) + 1e-12

    @given(voltages, temperatures, temperatures)
    def test_leakage_monotone_in_temperature(self, v, t_lo, t_hi):
        if t_lo > t_hi:
            t_lo, t_hi = t_hi, t_lo
        assert self.gt.cu_leakage(v, t_lo) <= self.gt.cu_leakage(v, t_hi) + 1e-12

    @given(temperatures, st.booleans())
    def test_idle_power_ordered_by_vf(self, temp, pg):
        table = FX8320_VF_TABLE
        powers = [
            self.gt.idle_chip_power(vf, FX8320_SPEC.nb_vf, temp, power_gating=pg)
            for vf in table.ascending()
        ]
        for slower, faster in zip(powers, powers[1:]):
            assert slower <= faster + 1e-9


class TestContentionProperties:
    nb = NorthBridge(FX8320_SPEC)

    @given(st.floats(min_value=0.0, max_value=1e12),
           st.floats(min_value=0.0, max_value=1e12))
    def test_latency_monotone_in_demand(self, d_lo, d_hi):
        if d_lo > d_hi:
            d_lo, d_hi = d_hi, d_lo
        a = self.nb.resolve_contention(d_lo).latency_multiplier
        b = self.nb.resolve_contention(d_hi).latency_multiplier
        assert a <= b + 1e-12

    @given(st.floats(min_value=0.0, max_value=1e13))
    def test_latency_bounded(self, demand):
        m = self.nb.resolve_contention(demand).latency_multiplier
        assert 1.0 <= m <= FX8320_SPEC.contention_cap


class TestPGAttributionProperties:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=1, max_value=4),  # busy CUs
        st.integers(min_value=1, max_value=2),  # busy cores per busy CU
    )
    def test_attribution_conserves_chip_idle(
        self, p_cu, p_nb, p_base, busy_cus, per_cu
    ):
        """Summing Eq. 7 attributions over every busy core recovers the
        chip idle power exactly, for any decomposition and occupancy."""
        vf = FX8320_VF_TABLE.fastest
        model = PGAwareIdleModel(
            {5: IdlePowerDecomposition(vf=vf, p_cu=p_cu, p_nb=p_nb, p_base=p_base)},
            num_cus=4,
            cores_per_cu=2,
        )
        busy_total = busy_cus * per_cu
        attributed = busy_total * model.per_core_idle(
            vf, busy_in_cu=per_cu, busy_total=busy_total, power_gating=True
        )
        chip = model.chip_idle(vf, busy_cus, power_gating=True)
        assert math.isclose(attributed, chip, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=1, max_value=8),
    )
    def test_eq8_attribution_conserves(self, p_cu, p_nb, p_base, busy_total):
        vf = FX8320_VF_TABLE.fastest
        model = PGAwareIdleModel(
            {5: IdlePowerDecomposition(vf=vf, p_cu=p_cu, p_nb=p_nb, p_base=p_base)},
            num_cus=4,
            cores_per_cu=2,
        )
        attributed = busy_total * model.per_core_idle(
            vf, busy_in_cu=1, busy_total=busy_total, power_gating=False
        )
        chip = model.chip_idle(vf, 0, power_gating=False)
        assert math.isclose(attributed, chip, rel_tol=1e-9, abs_tol=1e-9)


class TestSegmentProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e6),
                st.floats(min_value=1.0, max_value=1e7),
            ),
            min_size=2,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=10),
    )
    def test_segments_conserve_cycles(self, intervals, n_segments):
        """Splitting a trace into instruction segments conserves the
        total cycle count."""
        inst = [i for i, _c in intervals]
        cycles = [c for _i, c in intervals]
        total_inst = sum(inst)
        boundaries = np.linspace(
            total_inst / n_segments, total_inst, n_segments
        )
        segments = segment_cycles(inst, cycles, boundaries)
        assert math.isclose(segments.sum(), sum(cycles), rel_tol=1e-9)
        assert (segments >= -1e-9).all()


class TestNBScalingProperties:
    model = NBScalingModel()

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_nb_components_never_grow(
        self, time_s, core_power, nb_idle, nb_dyn, mem_share
    ):
        """Under NB_lo, NB idle *power* and NB dynamic energy both drop;
        only time-driven terms can raise total energy."""
        run = PerVFRunData(
            vf_index=1,
            time_s=time_s,
            core_power=core_power,
            nb_idle_power=nb_idle,
            nb_dynamic_energy=nb_dyn,
            memory_share=mem_share,
        )
        lo = self.model.project(run, nb_low=True)
        stretched_time = lo.time_s
        assert stretched_time >= time_s
        # Upper bound: all savings disabled (energy grows only by time).
        upper = (core_power + nb_idle) * stretched_time + nb_dyn
        assert lo.energy <= upper + 1e-9
