"""Property-based tests on workload generation and execution."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.phases import Workload, WorkloadPhase
from repro.workloads.synthetic import ProgramProfile, make_program

axes = st.floats(min_value=0.0, max_value=1.0)


class TestGeneratorProperties:
    @settings(max_examples=25)
    @given(axes, axes, axes, axes, axes, st.integers(min_value=1, max_value=12))
    def test_any_profile_generates_valid_phases(
        self, mem, fp, br, ilp, vol, n_phases
    ):
        """WorkloadPhase's own validation must hold for every point of
        the profile space (construction raises otherwise)."""
        profile = ProgramProfile(
            name="prop-{}-{}-{}".format(mem, fp, vol),
            memory_intensity=mem,
            fp_intensity=fp,
            branchiness=br,
            ilp=ilp,
            phase_volatility=vol,
            num_phases=n_phases,
        )
        workload = make_program(profile)
        assert len(workload.phases) == n_phases
        for phase in workload.phases:
            assert phase.ccpi > 0
            assert phase.mem_ns >= 0
            assert 0 <= phase.l3_miss_ratio <= 1
            assert phase.mispredict_per_inst <= phase.branch_per_inst
            assert phase.toggle_factor > 0

    @settings(max_examples=25)
    @given(axes, st.integers(min_value=1, max_value=8))
    def test_memory_axis_is_monotone_in_boundness(self, mem, n_phases):
        """More memory intensity never means less memory-boundness
        (comparing a profile against its half-intensity twin)."""
        hi = make_program(
            ProgramProfile(name="mono-a", memory_intensity=mem, num_phases=n_phases)
        )
        lo = make_program(
            ProgramProfile(
                name="mono-a", memory_intensity=mem / 2, num_phases=n_phases
            )
        )
        assert hi.memory_boundness(3.5) >= lo.memory_boundness(3.5) - 1e-9


class TestWorkloadProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.floats(min_value=1e6, max_value=1e10), min_size=1, max_size=8
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_phase_at_respects_boundaries(self, lengths, fraction):
        phases = [
            WorkloadPhase(name="p{}".format(i), instructions=n, ccpi=1.0, mem_ns=0.1)
            for i, n in enumerate(lengths)
        ]
        workload = Workload("prop", phases)
        total = workload.loop_instructions
        position = fraction * total * 0.999999
        phase = workload.phase_at(position)
        # The returned phase's cumulative span must contain the position.
        start = 0.0
        for candidate in phases:
            end = start + candidate.instructions
            if candidate is phase:
                assert start - 1e-6 <= position < end + 1e-6
                break
            start = end
        else:  # pragma: no cover - would mean phase_at returned a stranger
            raise AssertionError("phase_at returned a phase not in the list")

    @settings(max_examples=30)
    @given(st.floats(min_value=1e6, max_value=1e12))
    def test_budget_monotone(self, budget):
        phase = WorkloadPhase(name="p", instructions=1e9, ccpi=1.0, mem_ns=0.0)
        workload = Workload("prop", [phase], total_instructions=budget)
        assert not workload.is_finished(budget * 0.999)
        assert workload.is_finished(budget)
