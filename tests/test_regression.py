"""Unit tests for the shared fitting utilities."""

import numpy as np
import pytest

from repro.core.regression import (
    Polynomial,
    linear_fit,
    nonnegative_least_squares,
    polyfit,
)


class TestNNLS:
    def test_recovers_positive_coefficients(self):
        rng = np.random.default_rng(0)
        true = np.array([2.0, 0.5, 3.0])
        a = rng.random((50, 3))
        b = a @ true
        x = nonnegative_least_squares(a, b)
        assert x == pytest.approx(true, abs=1e-8)

    def test_clamps_negative_solutions(self):
        # A system whose unconstrained solution has a negative entry.
        a = np.array([[1.0, 1.0], [1.0, 1.01]])
        b = np.array([1.0, 0.5])
        x = nonnegative_least_squares(a, b)
        assert (x >= 0).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nonnegative_least_squares(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            nonnegative_least_squares(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            nonnegative_least_squares(np.ones((0, 2)), np.ones(0))


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 200)
        y = 0.5 * x + 2.0 + rng.normal(0, 0.01, x.size)
        slope, intercept = linear_fit(x, y)
        assert slope == pytest.approx(0.5, abs=0.01)
        assert intercept == pytest.approx(2.0, abs=0.05)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])


class TestPolyfit:
    def test_interpolates_exact_degree(self):
        x = [0.9, 1.0, 1.1, 1.2, 1.3]
        y = [xi ** 3 - xi for xi in x]
        poly = polyfit(x, y, 3)
        for xi, yi in zip(x, y):
            assert poly(xi) == pytest.approx(yi, abs=1e-9)

    def test_degree_property(self):
        assert polyfit([0, 1, 2], [0, 1, 4], 2).degree == 2

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            polyfit([0.0, 1.0], [0.0, 1.0], 3)

    def test_polynomial_is_callable(self):
        poly = Polynomial((2.0, 1.0))  # 2x + 1
        assert poly(3.0) == pytest.approx(7.0)
