"""Unit tests for the power measurement channel."""

import numpy as np
import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.sensor import PowerSensor


@pytest.fixture
def sensor():
    return PowerSensor(FX8320_SPEC, np.random.default_rng(7))


class TestSampling:
    def test_sample_tracks_true_power(self, sensor):
        samples = [sensor.sample(50.0) for _ in range(500)]
        # Mean within a watt of truth (gain error + offset are small).
        assert abs(np.mean(samples) - 50.0) < 1.0

    def test_sample_noise_matches_spec(self, sensor):
        samples = [sensor.sample(50.0) for _ in range(2000)]
        measured_sd = np.std(samples)
        assert 0.5 * FX8320_SPEC.sensor_noise_w < measured_sd < 2.0 * FX8320_SPEC.sensor_noise_w

    def test_samples_are_quantized(self, sensor):
        q = FX8320_SPEC.sensor_quantum
        for _ in range(50):
            value = sensor.sample(42.3)
            assert (value / q) == pytest.approx(round(value / q), abs=1e-6)

    def test_sample_never_negative(self, sensor):
        assert all(sensor.sample(0.0) >= 0.0 for _ in range(100))

    def test_rejects_negative_power(self, sensor):
        with pytest.raises(ValueError):
            sensor.sample(-1.0)

    def test_sample_many_length(self, sensor):
        assert len(sensor.sample_many([10.0] * 10)) == 10


class TestCalibration:
    def test_gain_is_per_session(self):
        gains = {
            PowerSensor(FX8320_SPEC, np.random.default_rng(seed)).gain
            for seed in range(5)
        }
        assert len(gains) == 5  # independent draws

    def test_gain_near_unity(self):
        for seed in range(20):
            gain = PowerSensor(FX8320_SPEC, np.random.default_rng(seed)).gain
            assert abs(gain - 1.0) < 5 * FX8320_SPEC.sensor_gain_sigma

    def test_deterministic_given_seed(self):
        a = PowerSensor(FX8320_SPEC, np.random.default_rng(3))
        b = PowerSensor(FX8320_SPEC, np.random.default_rng(3))
        assert [a.sample(30.0) for _ in range(10)] == [
            b.sample(30.0) for _ in range(10)
        ]


class TestIntervalAverage:
    def test_average(self):
        assert PowerSensor.interval_average([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerSensor.interval_average([])
