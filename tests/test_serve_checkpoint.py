"""Checkpoint/restore round-trips for every stateful pipeline stage.

The serve restart guarantee is *bit-identity*: a pipeline restored from
a checkpoint must make exactly the decisions an uninterrupted pipeline
would have made.  Every test here runs the interrupted path through a
real JSON round-trip (``json.loads(json.dumps(state))``) -- the same
container the on-disk checkpoint uses -- so any state that would not
survive serialisation (tuples, numpy scalars, incremental sums) fails
here rather than in a 3 a.m. restart.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.dvfs.power_capping import ExternalBudget, PPEPPowerCapper
from repro.faults.filtering import HardenedPPEP, TelemetryFilter
from repro.fleet.cluster_cap import ClusterPowerManager
from repro.fleet.simulator import make_fleet
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.obs.events import EventLog
from repro.obs.ledger import PredictionLedger
from repro.serve.shard import ShardPipeline
from repro.workloads.synthetic import make_cpu_bound, make_memory_bound


def _json_round_trip(state):
    """What the on-disk checkpoint actually does to the state."""
    return json.loads(json.dumps(state))


def _stream(seed, n, stuck_at=()):
    """A deterministic sample stream with optional injected faults."""
    platform = Platform(FX8320_SPEC, seed=seed, power_gating=True)
    platform.set_assignment(
        CoreAssignment.packed(
            [make_cpu_bound("ckpt-cpu"), make_memory_bound("ckpt-mem")]
        )
    )
    samples = []
    for k in range(n):
        sample = platform.step()
        if k in stuck_at:
            # All readings identical: the filter's stuck-sensor fault.
            sample = dataclasses.replace(
                sample,
                power_samples=[40.0] * len(sample.power_samples),
                measured_power=40.0,
            )
        samples.append(sample)
    return samples


class TestLedgerRoundTrip:
    """CUSUM accumulators and rolling MAE windows survive bit-exactly."""

    KWARGS = dict(window=8, calibration_intervals=10, cusum_slack=0.5,
                  cusum_threshold=4.0)

    def _feed(self, ledger, rows):
        for k, (predicted, measured) in enumerate(rows):
            ledger.record(
                node="n0", interval=k, vf_index=5,
                predicted_power=predicted, measured_power=measured,
                interval_s=0.2,
            )

    def _rows(self, n):
        rng = np.random.default_rng(99)
        rows = []
        for k in range(n):
            predicted = 40.0 + rng.normal(0, 1.0)
            drift = 6.0 if k >= 30 else 0.0  # mid-run error shift
            rows.append((float(predicted), float(predicted + drift
                                                 + rng.normal(0, 0.3))))
        return rows

    def test_resumed_ledger_matches_uninterrupted(self):
        rows = self._rows(45)
        uninterrupted = PredictionLedger(**self.KWARGS)
        self._feed(uninterrupted, rows)

        first = PredictionLedger(**self.KWARGS)
        self._feed(first, rows[:20])
        state = _json_round_trip(first.state_dict())
        resumed = PredictionLedger(**self.KWARGS)
        resumed.load_state_dict(state)
        for k, (predicted, measured) in enumerate(rows[20:], start=20):
            resumed.record(
                node="n0", interval=k, vf_index=5,
                predicted_power=predicted, measured_power=measured,
                interval_s=0.2,
            )

        # Bit-identical statistics, not approximately-equal ones.
        assert resumed.node_mae("n0") == uninterrupted.node_mae("n0")
        assert resumed.node_summary() == uninterrupted.node_summary()
        assert resumed.per_vf_mae() == uninterrupted.per_vf_mae()
        assert resumed.per_vf_relative() == uninterrupted.per_vf_relative()
        assert resumed.drift_flags == uninterrupted.drift_flags
        # The injected shift must actually have exercised the detector.
        assert uninterrupted.drift_flags

    def test_cusum_mid_calibration_checkpoint(self):
        """A snapshot taken *during* calibration resumes the calibration
        accumulation exactly where it stopped."""
        rows = self._rows(45)
        cut = 5  # inside the 10-interval calibration prefix
        uninterrupted = PredictionLedger(**self.KWARGS)
        self._feed(uninterrupted, rows)
        first = PredictionLedger(**self.KWARGS)
        self._feed(first, rows[:cut])
        resumed = PredictionLedger(**self.KWARGS)
        resumed.load_state_dict(_json_round_trip(first.state_dict()))
        for k, (predicted, measured) in enumerate(rows[cut:], start=cut):
            resumed.record(
                node="n0", interval=k, vf_index=5,
                predicted_power=predicted, measured_power=measured,
                interval_s=0.2,
            )
        assert resumed.drift_flags == uninterrupted.drift_flags
        assert resumed.node_summary() == uninterrupted.node_summary()

    def test_config_mismatch_rejected(self):
        ledger = PredictionLedger(**self.KWARGS)
        state = ledger.state_dict()
        other = PredictionLedger(window=16, calibration_intervals=10,
                                 cusum_slack=0.5, cusum_threshold=4.0)
        with pytest.raises(ValueError):
            other.load_state_dict(state)


class TestFilterRoundTrip:
    """Last-good fallbacks, window history, and streak state survive."""

    def test_resumed_filter_verdicts_match(self):
        # Faults straddle the checkpoint: one before (fills last-good
        # state) and one after (exercises the restored fallbacks).
        samples = _stream(seed=11, n=36, stuck_at=(8, 9, 24))
        uninterrupted = TelemetryFilter(FX8320_SPEC)
        verdicts_u = [uninterrupted.ingest(s) for s in samples]

        first = TelemetryFilter(FX8320_SPEC)
        for s in samples[:18]:
            first.ingest(s)
        resumed = TelemetryFilter(FX8320_SPEC)
        resumed.load_state_dict(_json_round_trip(first.state_dict()))
        verdicts_r = [resumed.ingest(s) for s in samples[18:]]

        for got, want in zip(verdicts_r, verdicts_u[18:]):
            assert got.quality == want.quality
            assert got.issues == want.issues
            assert got.power == want.power  # bit-exact
            assert got.sample.measured_power == want.sample.measured_power
        assert resumed.quality_counts == uninterrupted.quality_counts

    def test_stale_detection_survives_restart(self):
        """The stale-redelivery signature is part of the state: replaying
        the last pre-checkpoint sample after restore must still be BAD."""
        samples = _stream(seed=12, n=6)
        filt = TelemetryFilter(FX8320_SPEC)
        for s in samples:
            filt.ingest(s)
        resumed = TelemetryFilter(FX8320_SPEC)
        resumed.load_state_dict(_json_round_trip(filt.state_dict()))
        redelivered = resumed.ingest(samples[-1])
        assert redelivered.quality == "bad"
        assert "stale" in redelivered.issues

    def test_window_mismatch_rejected(self):
        from repro.faults.filtering import FilterConfig

        filt = TelemetryFilter(FX8320_SPEC)
        other = TelemetryFilter(FX8320_SPEC, FilterConfig(window=4))
        with pytest.raises(ValueError, match="window"):
            other.load_state_dict(filt.state_dict())


class TestCapperRoundTrip:
    def test_capper_and_budget_state(self, tiny_registry):
        ppep = tiny_registry.get(FX8320_SPEC)
        samples = _stream(seed=13, n=12)
        budget_a = ExternalBudget(80.0)
        capper_a = PPEPPowerCapper(ppep, budget_a)
        budget_u = ExternalBudget(80.0)
        capper_u = PPEPPowerCapper(ppep, budget_u)
        for s in samples[:6]:
            capper_a.decide(s)
            capper_u.decide(s)
        budget_b = ExternalBudget()
        budget_b.load_state_dict(_json_round_trip(budget_a.state_dict()))
        capper_b = PPEPPowerCapper(ppep, budget_b)
        capper_b.load_state_dict(_json_round_trip(capper_a.state_dict()))
        assert budget_b.value == 80.0
        for s in samples[6:]:
            got = [vf.index for vf in capper_b.decide(s)]
            want = [vf.index for vf in capper_u.decide(s)]
            assert got == want
        assert capper_b.state_dict() == capper_u.state_dict()


class TestClusterManagerRoundTrip:
    """Quarantine set, held decisions, and allocations survive transplant."""

    def test_resumed_manager_matches_uninterrupted(self, tiny_registry):
        # Two same-seed fleets step identically; one manager runs 16
        # intervals straight, the other is interrupted at 8 and its state
        # is transplanted (via JSON) into a brand-new manager object.
        fleet_u = make_fleet([FX8320_SPEC] * 3, tiny_registry, base_seed=71)
        fleet_r = make_fleet([FX8320_SPEC] * 3, tiny_registry, base_seed=71)
        manager_u = ClusterPowerManager(fleet_u, 180.0, policy="waterfill",
                                        harden=True)
        manager_r1 = ClusterPowerManager(fleet_r, 180.0, policy="waterfill",
                                         harden=True)
        run_u = manager_u.run(16)
        run_r1 = manager_r1.run(8)
        state = _json_round_trip(manager_r1.state_dict())

        manager_r2 = ClusterPowerManager(fleet_r, 180.0, policy="waterfill",
                                         harden=True)
        manager_r2.load_state_dict(state)
        run_r2 = manager_r2.run(8, resume=True)

        assert run_r1.shares + run_r2.shares == run_u.shares
        assert run_r1.node_powers + run_r2.node_powers == run_u.node_powers
        assert run_r1.caps + run_r2.caps == run_u.caps
        assert (run_r1.node_healthy + run_r2.node_healthy
                == run_u.node_healthy)

    def test_roster_mismatch_rejected(self, tiny_registry):
        fleet_a = make_fleet([FX8320_SPEC] * 2, tiny_registry)
        fleet_b = make_fleet([FX8320_SPEC] * 3, tiny_registry)
        manager_a = ClusterPowerManager(fleet_a, 100.0)
        manager_b = ClusterPowerManager(fleet_b, 100.0)
        with pytest.raises(ValueError, match="nodes"):
            manager_b.load_state_dict(manager_a.state_dict())

    def test_harden_mode_mismatch_rejected(self, tiny_registry):
        fleet = make_fleet([FX8320_SPEC] * 2, tiny_registry)
        plain = ClusterPowerManager(fleet, 100.0)
        hardened = ClusterPowerManager(fleet, 100.0, harden=True)
        with pytest.raises(ValueError, match="hardening"):
            hardened.load_state_dict(plain.state_dict())


class TestShardPipelineRoundTrip:
    """The whole per-SKU serve engine restores to bit-identical decisions."""

    def _pipeline(self, tiny_registry, events=None):
        return ShardPipeline(
            sku="fx8320",
            spec=FX8320_SPEC,
            ppep=tiny_registry.get(FX8320_SPEC),
            node_names=["a", "b"],
            budget_w=160.0,
            unhealthy_after=2,
            events=events,
            ledger_kwargs=dict(window=8, calibration_intervals=6,
                               cusum_slack=0.5, cusum_threshold=4.0),
        )

    def _streams(self, n):
        return {
            "a": _stream(seed=21, n=n, stuck_at=(5, 6, 7)),
            "b": _stream(seed=22, n=n),
        }

    def test_resumed_pipeline_matches_uninterrupted(self, tiny_registry):
        n = 24
        streams = self._streams(n)
        uninterrupted = self._pipeline(tiny_registry)
        results_u = []
        for k in range(n):
            for node in ("a", "b"):
                results_u.append(uninterrupted.process(node, streams[node][k]))

        first = self._pipeline(tiny_registry, events=EventLog())
        for k in range(12):
            for node in ("a", "b"):
                first.process(node, streams[node][k])
        state = _json_round_trip(first.state_dict())
        resumed = self._pipeline(tiny_registry, events=EventLog())
        resumed.load_state_dict(state)
        results_r = []
        for k in range(12, n):
            for node in ("a", "b"):
                results_r.append(resumed.process(node, streams[node][k]))

        assert results_r == results_u[24:]
        assert resumed.ledger.node_summary() == (
            uninterrupted.ledger.node_summary()
        )
        assert resumed.state_dict() == uninterrupted.state_dict()
        # The stuck-sensor streak on node a must have quarantined it.
        assert uninterrupted.ledger.node_summary()["a"]["records"] < n

    def test_restored_pipeline_does_not_reemit_cap_reallocation(
        self, tiny_registry
    ):
        # Clean streams: the healthy set never changes, so the one and
        # only legitimate cap_reallocation is the initial one.
        streams = {
            "a": _stream(seed=21, n=6),
            "b": _stream(seed=22, n=6),
        }
        events_a = EventLog()
        first = self._pipeline(tiny_registry, events=events_a)
        for k in range(6):
            for node in ("a", "b"):
                first.process(node, streams[node][k])
        # Healthy steady state: exactly one allocation-signature event.
        assert len(events_a.of_type("cap_reallocation")) == 1

        events_b = EventLog()
        resumed = self._pipeline(tiny_registry, events=events_b)
        resumed.load_state_dict(_json_round_trip(first.state_dict()))
        more = {
            "a": _stream(seed=21, n=9),
            "b": _stream(seed=22, n=9),
        }
        for k in range(6, 9):
            for node in ("a", "b"):
                resumed.process(node, more[node][k])
        assert events_b.of_type("cap_reallocation") == []

    def test_roster_mismatch_rejected(self, tiny_registry):
        pipeline = self._pipeline(tiny_registry)
        other = ShardPipeline(
            sku="fx8320", spec=FX8320_SPEC,
            ppep=tiny_registry.get(FX8320_SPEC), node_names=["a", "c"],
        )
        with pytest.raises(ValueError, match="roster"):
            other.load_state_dict(pipeline.state_dict())


class TestHardenedPPEPRoundTrip:
    def test_interval_counter_and_filter_travel_together(self, tiny_registry):
        ppep = tiny_registry.get(FX8320_SPEC)
        samples = _stream(seed=31, n=10)
        hardened = HardenedPPEP(ppep, node="n0")
        for s in samples[:7]:
            hardened.estimate_current(s)
        resumed = HardenedPPEP(ppep, node="n0")
        resumed.load_state_dict(_json_round_trip(hardened.state_dict()))
        assert resumed._interval == 7
        est_r, verdict_r = resumed.estimate_current(samples[7])
        est_u, verdict_u = hardened.estimate_current(samples[7])
        assert est_r == est_u
        assert verdict_r.quality == verdict_u.quality


class TestTornCheckpointTruncation:
    """A checkpoint torn at *any* byte boundary must read as absent.

    ``os.replace`` makes torn on-disk checkpoints impossible in normal
    operation, but a torn tmp file can survive a crash (see
    :class:`repro.chaos.disk.DiskChaos`) and an operator can copy one
    over the real path by mistake.  ``read_checkpoint`` must treat every
    proper prefix of a valid document as a cold start -- never a crash,
    never a half-restored pipeline.
    """

    def _document(self, tmp_path):
        from repro.serve.checkpoint import write_checkpoint

        path = tmp_path / "shard.json"
        write_checkpoint(
            str(path),
            {"processed": 12, "intervals": {"a": 6, "b": 6}, "x": 0.1 + 0.2},
        )
        return path, path.read_bytes()

    def test_every_byte_boundary_reads_as_cold_start(self, tmp_path):
        from repro.serve.checkpoint import read_checkpoint

        path, document = self._document(tmp_path)
        for cut in range(len(document)):
            path.write_bytes(document[:cut])
            assert read_checkpoint(str(path)) is None, (
                "prefix of {} bytes parsed as a checkpoint".format(cut)
            )
        # The full document still round-trips after all that abuse.
        path.write_bytes(document)
        assert read_checkpoint(str(path))["processed"] == 12

    def test_torn_tmp_litter_does_not_shadow_the_checkpoint(self, tmp_path):
        """A crash between tmp write and replace leaves litter next to
        the real file; reads keep going to the intact checkpoint."""
        from repro.chaos import ChaosSpec, DiskChaos
        from repro.serve.checkpoint import read_checkpoint, write_checkpoint

        path, _document = self._document(tmp_path)
        chaos = DiskChaos(ChaosSpec(torn_tmp_rate=1.0, seed=3))
        for _ in range(3):
            with pytest.raises(OSError):
                write_checkpoint(str(path), {"processed": 99}, chaos=chaos)
        litter = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert len(litter) == 3
        assert read_checkpoint(str(path))["processed"] == 12
        # The next healthy save replaces cleanly despite the litter.
        write_checkpoint(str(path), {"processed": 13})
        assert read_checkpoint(str(path))["processed"] == 13

    def test_torn_tmp_contents_read_as_cold_start(self, tmp_path):
        """Even the torn tmp file itself -- a strict prefix of a valid
        document -- reads as absent if something tries to load it."""
        from repro.chaos import ChaosSpec, DiskChaos
        from repro.serve.checkpoint import read_checkpoint, write_checkpoint

        path = tmp_path / "shard.json"
        chaos = DiskChaos(ChaosSpec(torn_tmp_rate=1.0, seed=3))
        with pytest.raises(OSError):
            write_checkpoint(str(path), {"processed": 99}, chaos=chaos)
        (litter,) = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert read_checkpoint(str(litter)) is None
