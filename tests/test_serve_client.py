"""The resilient client: exactly-once delivery from the sender's side.

These tests run :class:`~repro.serve.client.ResilientClient` against a
scripted in-process TCP server so every server behavior -- accept,
backpressure, shed, withheld ack, rejection, dropped connection -- is
deterministic.  The server dedups by ``(node, seq)`` exactly like the
real :class:`~repro.serve.manager.ShardManager`, which is what makes
"resend on any doubt" safe; the assertions pin that no script ever
leads to a line being applied zero times or twice.
"""

import json
import socket
import threading
from collections import deque

import pytest

from repro.serve.client import DeliveryError, ResilientClient
from repro.serve.protocol import encode


class _ScriptedServer:
    """A line server whose behavior per received line is scripted.

    ``script`` is a queue of actions consulted once per received line
    (falling back to ``"accept"`` when empty):

    - ``accept``: apply the line (dedup-aware) and ack it;
    - ``retry`` / ``shed``: refuse with the matching backpressure status;
    - ``error``: reject the line outright;
    - ``drop``: read the line, apply nothing, send nothing (the client
      times out and redelivers);
    - ``apply_drop``: apply the line but withhold the ack -- the lost-ack
      race the dedup window exists for;
    - ``dup_ack``: apply the line and ack it *twice* -- the
      proxy-duplicated-response race that leaves a stray response in the
      client's receive buffer;
    - ``close``: drop the connection without a response.

    Responses echo the request's ``node`` and ``seq``, exactly like the
    real ingest front-end.  ``applied`` records each line applied
    exactly once, in order.
    """

    def __init__(self, script=(), port=0):
        self.script = deque(script)
        self.applied = []
        self.received = []
        self.seen = set()
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", port))
        self.sock.listen(8)
        self.sock.settimeout(0.05)
        self.port = self.sock.getsockname()[1]
        self._stop = False
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _respond(self, conn, status, obj, seq):
        payload = {"status": status, "seq": seq, "node": obj.get("node")}
        if status in ("retry", "shed"):
            payload["retry_after_s"] = 0.0
        if status == "error":
            payload["reason"] = "scripted rejection"
        conn.sendall(json.dumps(payload).encode() + b"\n")

    def _apply(self, conn, obj, seq):
        key = (obj.get("node"), seq)
        if seq is not None and key in self.seen:
            self._respond(conn, "duplicate", obj, seq)
            return
        self.seen.add(key)
        self.applied.append(obj)
        self._respond(conn, "accepted", obj, seq)

    def _serve(self, conn):
        conn.settimeout(0.05)
        buf = b""
        while not self._stop:
            if b"\n" not in buf:
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    return
                buf += chunk
                continue
            line, _sep, buf = buf.partition(b"\n")
            obj = json.loads(line)
            seq = obj.get("seq")
            self.received.append(obj)
            action = self.script.popleft() if self.script else "accept"
            if action == "accept":
                self._apply(conn, obj, seq)
            elif action in ("retry", "shed", "error"):
                self._respond(conn, action, obj, seq)
            elif action == "drop":
                pass
            elif action == "apply_drop":
                key = (obj.get("node"), seq)
                self.seen.add(key)
                self.applied.append(obj)
            elif action == "dup_ack":
                self._apply(conn, obj, seq)
                self._respond(conn, "duplicate", obj, seq)
            elif action == "close":
                conn.close()
                return
            else:  # pragma: no cover - script typo guard
                raise AssertionError("unknown action " + action)

    def _run(self):
        while not self._stop:
            try:
                conn, _addr = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._serve(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def stop(self):
        self._stop = True
        self._thread.join(timeout=5.0)
        self.sock.close()


@pytest.fixture
def server():
    srv = _ScriptedServer()
    yield srv
    srv.stop()


def _client(server, **kwargs):
    kwargs.setdefault("timeout_s", 0.3)
    kwargs.setdefault("sleep", lambda _s: None)  # no real backoff waits
    return ResilientClient("127.0.0.1", server.port, **kwargs)


def _line(node, i):
    return encode({"type": "telemetry", "node": node, "interval": i})


class TestSequenceNumbers:
    def test_seq_is_per_node_monotonic(self, server):
        with _client(server) as client:
            for i in range(3):
                client.send_wire(_line("a", i))
            for i in range(2):
                client.send_wire(_line("b", i))
        by_node = {}
        for obj in server.received:
            by_node.setdefault(obj["node"], []).append(obj["seq"])
        assert by_node == {"a": [0, 1, 2], "b": [0, 1]}

    def test_preassigned_seq_is_kept_and_advances_the_counter(self, server):
        with _client(server) as client:
            client.send_wire(encode({"node": "a", "seq": 41}))
            client.send_wire(_line("a", 1))  # fresh assignment continues
        assert [o["seq"] for o in server.received] == [41, 42]


class TestRedelivery:
    def test_retry_redelivers_same_seq_until_accepted(self, server):
        server.script.extend(["retry", "retry", "accept"])
        with _client(server) as client:
            resp = client.send_wire(_line("a", 0))
        assert resp["status"] == "accepted"
        assert client.stats["retries"] == 2
        assert client.stats["redeliveries"] == 2
        # Every redelivery reused seq 0; the line applied exactly once.
        assert [o["seq"] for o in server.received] == [0, 0, 0]
        assert len(server.applied) == 1

    def test_shed_is_redelivered_like_retry(self, server):
        server.script.extend(["shed", "accept"])
        with _client(server) as client:
            resp = client.send_wire(_line("a", 0))
        assert resp["status"] == "accepted"
        assert client.stats["sheds"] == 1
        assert len(server.applied) == 1

    def test_withheld_ack_converges_to_duplicate(self, server):
        """The lost-ack race: the server applied the line but the ack
        never arrived.  The client must redeliver and the pair must
        converge on applied-exactly-once."""
        server.script.append("apply_drop")
        with _client(server) as client:
            resp = client.send_wire(_line("a", 0))
        assert resp["status"] == "duplicate"
        assert client.stats["timeouts"] >= 1
        assert client.stats["duplicates"] == 1
        assert client.stats["accepted"] == 0
        assert len(server.applied) == 1  # never applied twice

    def test_dropped_connection_reconnects_and_redelivers(self, server):
        server.script.append("close")
        with _client(server) as client:
            resp = client.send_wire(_line("a", 0))
        assert resp["status"] == "accepted"
        assert client.stats["reconnects"] == 1
        assert len(server.applied) == 1

    def test_redelivery_budget_exhaustion_raises(self, server):
        # Budget 2 allows exactly 3 deliveries of the line (initial +
        # two redeliveries); the third refusal exhausts it.
        server.script.extend(["retry"] * 3)
        with _client(server, max_redeliveries=2) as client:
            with pytest.raises(DeliveryError, match="redeliveries"):
                client.send_wire(_line("a", 0))
            # The poisoned line was dropped from the outbox: the next
            # line is not wedged behind it.
            assert client.spooled == 0
            assert client.send_wire(_line("a", 1))["status"] == "accepted"


class TestStrayResponses:
    def test_other_nodes_leftover_response_is_not_misattributed(self, server):
        """Per-node seq counters advance in lockstep, so a leftover
        response for node a / seq 0 carries the same seq as the next
        transaction (node b / seq 0).  The client must discard it on the
        node mismatch -- misattributing it here would report node b's
        rejected line as delivered and shift every later response."""
        server.script.extend(["dup_ack", "error"])
        with _client(server) as client:
            assert client.send_wire(_line("a", 0))["status"] == "accepted"
            with pytest.raises(DeliveryError, match="scripted rejection"):
                client.send_wire(_line("b", 0))
        assert client.stats["stray_responses"] == 1
        # Node b's line was never applied; only node a's was.
        assert [o["node"] for o in server.applied] == ["a"]


class TestRejection:
    def test_error_status_raises_and_does_not_redeliver(self, server):
        server.script.append("error")
        with _client(server) as client:
            with pytest.raises(DeliveryError, match="scripted rejection"):
                client.send_wire(_line("a", 0))
            assert client.stats["errors"] == 1
            assert client.stats["redeliveries"] == 0
        assert server.applied == []


class TestSpooling:
    def _dead_port(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_offline_sends_spool_then_drain_delivers_in_order(self):
        port = self._dead_port()
        client = ResilientClient(
            "127.0.0.1", port, timeout_s=0.2, connect_attempts=1,
            sleep=lambda _s: None,
        )
        for i in range(3):
            assert client.send_wire(_line("a", i))["status"] == "spooled"
        assert client.spooled == 3
        # The "spooled" stat is a gauge of the outbox depth.
        assert client.stats["spooled"] == 3
        server = _ScriptedServer(port=port)
        try:
            assert client.drain(timeout_s=10.0)
            assert client.spooled == 0
            assert client.stats["spooled"] == 0
            assert [o["seq"] for o in server.applied] == [0, 1, 2]
        finally:
            client.close()
            server.stop()

    def test_spool_overflow_raises_instead_of_buffering(self):
        port = self._dead_port()
        client = ResilientClient(
            "127.0.0.1", port, timeout_s=0.2, connect_attempts=1,
            spool_limit=1, sleep=lambda _s: None,
        )
        assert client.send_wire(_line("a", 0))["status"] == "spooled"
        with pytest.raises(DeliveryError, match="spool overflow"):
            client.send_wire(_line("a", 1))
        client.close()

    def test_spool_overflow_does_not_burn_a_seq(self):
        """A line refused on spool overflow must not consume a sequence
        number: the server's dedup window treats any seq gap as
        already-accepted history, so a gapped counter would turn a later
        legitimate send into a false duplicate."""
        port = self._dead_port()
        client = ResilientClient(
            "127.0.0.1", port, timeout_s=0.2, connect_attempts=1,
            spool_limit=1, sleep=lambda _s: None,
        )
        assert client.send_wire(_line("a", 0))["status"] == "spooled"
        with pytest.raises(DeliveryError, match="spool overflow"):
            client.send_wire(_line("a", 1))
        server = _ScriptedServer(port=port)
        try:
            assert client.drain(timeout_s=10.0)
            # The next send takes seq 1, right after the only line that
            # was ever admitted -- no gap from the refused line.
            assert client.send_wire(_line("a", 2))["status"] == "accepted"
            assert [o["seq"] for o in server.applied] == [0, 1]
        finally:
            client.close()
            server.stop()


class TestDeterminism:
    def test_jitter_is_a_pure_function_of_the_seed(self):
        a = ResilientClient("127.0.0.1", 1, seed=9)
        b = ResilientClient("127.0.0.1", 1, seed=9)
        c = ResilientClient("127.0.0.1", 1, seed=10)
        seq_a = [a._jitter() for _ in range(6)]
        seq_b = [b._jitter() for _ in range(6)]
        seq_c = [c._jitter() for _ in range(6)]
        assert seq_a == seq_b
        assert seq_a != seq_c
        assert all(0.5 <= j < 1.5 for j in seq_a + seq_c)

    def test_backoff_is_capped(self):
        client = ResilientClient(
            "127.0.0.1", 1, seed=0, backoff_base_s=0.02, backoff_max_s=0.1
        )
        assert client._backoff(20) <= 0.1 * 1.5

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ResilientClient("h", 1, timeout_s=0.0)
        with pytest.raises(ValueError, match="connect_attempts"):
            ResilientClient("h", 1, connect_attempts=0)
        with pytest.raises(ValueError, match="spool_limit"):
            ResilientClient("h", 1, spool_limit=0)
