"""Service degradation: dedup, shedding with held decisions, recovery.

The resilience contract at manager level, tested with real forked
workers and real signals:

- a redelivered, already-accepted ``seq`` answers ``duplicate`` and is
  never applied twice;
- a SIGSTOPped worker stops heartbeating, the shard degrades, new
  submissions are shed *with the node's last-safe VF decision*, and
  SIGCONT ends the episode with a measured recovery;
- a SIGKILLed worker with checkpointing restarts to **exact** zero
  loss: every accepted interval is processed exactly once (the
  in-flight ledger redelivers the checkpoint gap, and each applied
  interval's ``decision`` event carries a unique delivery index);
- :meth:`ShardManager.health` exposes the whole picture.

The ``slow_kill`` storm at the bottom repeats the crash cycle several
times in one run (deselect with ``-m 'not slow_kill'``).
"""

import os
import signal
import time

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.obs.events import read_events
from repro.serve.manager import ShardManager, ShardSpec
from repro.serve.protocol import decode_line, parse_telemetry, telemetry_line

NODES = ["fx8320-n00", "fx8320-n01"]


def _wire_stream(n_per_node, seed=83, with_seq=False):
    from repro.hardware.platform import CoreAssignment, Platform
    from repro.workloads.synthetic import make_cpu_bound, make_memory_bound

    platforms = {
        NODES[0]: Platform(FX8320_SPEC, seed=seed, power_gating=True),
        NODES[1]: Platform(FX8320_SPEC, seed=seed + 1, power_gating=True),
    }
    platforms[NODES[0]].set_assignment(
        CoreAssignment.packed([make_cpu_bound("deg-cpu")])
    )
    platforms[NODES[1]].set_assignment(
        CoreAssignment.packed([make_memory_bound("deg-mem")])
    )
    events = []
    for k in range(n_per_node):
        for node, platform in platforms.items():
            line = telemetry_line(node, "fx8320", k, platform.step())
            event = parse_telemetry(decode_line(line))
            if with_seq:
                event["seq"] = k
            events.append(event)
    return events


def _manager(tiny_registry, tmp_path, heartbeat_timeout_s=60.0, **kwargs):
    kwargs.setdefault("queue_size", 64)
    kwargs.setdefault("checkpoint_dir", str(tmp_path / "ckpt"))
    kwargs.setdefault("checkpoint_every", 4)
    kwargs.setdefault("events_dir", str(tmp_path / "events"))
    return ShardManager(
        [
            ShardSpec(
                sku="fx8320",
                spec=FX8320_SPEC,
                ppep=tiny_registry.get(FX8320_SPEC),
                node_names=list(NODES),
                budget_w=160.0,
            )
        ],
        heartbeat_timeout_s=heartbeat_timeout_s,
        **kwargs,
    )


def _submit_all(manager, events):
    for event in events:
        while manager.submit(event)["status"] in ("retry", "shed"):
            manager.ensure_alive()
            manager.poll()
            time.sleep(0.01)


def _wait(predicate, timeout_s=15.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail("timed out waiting for " + what)


class TestDedupWindow:
    def test_redelivered_seq_is_not_applied_twice(self, tiny_registry):
        # Routing only (no worker): submit just enqueues.
        manager = ShardManager(
            [
                ShardSpec(
                    sku="fx8320",
                    spec=FX8320_SPEC,
                    ppep=tiny_registry.get(FX8320_SPEC),
                    node_names=list(NODES),
                )
            ],
            queue_size=8,
        )
        event = _wire_stream(1, with_seq=True)[0]
        handle = manager.shards["fx8320"]
        assert manager.submit(event)["status"] == "accepted"
        assert manager.submit(event)["status"] == "duplicate"
        assert manager.submit(event)["status"] == "duplicate"
        assert handle.duplicates == 2
        assert handle.in_queue.qsize() == 1  # applied exactly once

    def test_seq_below_the_window_counts_as_long_accepted(self, tiny_registry):
        manager = ShardManager(
            [
                ShardSpec(
                    sku="fx8320",
                    spec=FX8320_SPEC,
                    ppep=tiny_registry.get(FX8320_SPEC),
                    node_names=list(NODES),
                )
            ],
            queue_size=8,
            dedup_window=4,
        )
        event = _wire_stream(1, with_seq=True)[0]
        assert manager.submit(dict(event, seq=100))["status"] == "accepted"
        # Far older than the window: monotonic clients never skip ahead
        # past an unaccepted seq, so this must have been accepted once.
        assert manager.submit(dict(event, seq=3))["status"] == "duplicate"
        # A fresh, newer seq is new traffic.
        assert manager.submit(dict(event, seq=101))["status"] == "accepted"

    def test_events_without_seq_bypass_dedup(self, tiny_registry):
        manager = ShardManager(
            [
                ShardSpec(
                    sku="fx8320",
                    spec=FX8320_SPEC,
                    ppep=tiny_registry.get(FX8320_SPEC),
                    node_names=list(NODES),
                )
            ],
            queue_size=8,
        )
        event = _wire_stream(1)[0]
        assert "seq" not in event
        assert manager.submit(event)["status"] == "accepted"
        assert manager.submit(event)["status"] == "accepted"


class TestSigstopDegradation:
    def test_stall_sheds_with_held_decision_then_recovers(
        self, tiny_registry, tmp_path
    ):
        events = _wire_stream(12)
        manager = _manager(tiny_registry, tmp_path, heartbeat_timeout_s=0.3)
        manager.start()
        handle = manager.shards["fx8320"]
        try:
            first, rest = events[:16], events[16:]
            _submit_all(manager, first)
            _wait(
                lambda: manager.stats()["processed"] >= len(first),
                what="first batch processed",
            )
            os.kill(handle.process.pid, signal.SIGSTOP)
            try:
                _wait(
                    lambda: bool(manager.check_heartbeats()) or handle.degraded,
                    what="heartbeat stall detection",
                )
                assert handle.degraded_reason == "heartbeat_stall"

                # Degraded shard: shed, not stall -- and the response
                # carries the node's last-safe decision to hold.
                payload = manager.submit(rest[0])
                assert payload["status"] == "shed"
                assert payload["reason"] == "heartbeat_stall"
                held = payload["held_decision"]
                assert isinstance(held, list) and len(held) > 0
                assert all(isinstance(vf, int) for vf in held)

                health = manager.health()
                assert health["degraded"] == 1
                assert health["shards"]["fx8320"]["degraded_reason"] == (
                    "heartbeat_stall"
                )
            finally:
                os.kill(handle.process.pid, signal.SIGCONT)

            # The first live heartbeat ends the episode.
            _wait(lambda: (manager.poll(), not handle.degraded)[1],
                  what="recovery")
            health = manager.health()
            assert health["degraded"] == 0
            assert health["recoveries"] == 1
            assert health["recovery_s_max"] > 0.0

            _submit_all(manager, rest)
        finally:
            final = manager.stop()
        shard = final["shards"]["fx8320"]
        assert shard["processed"] == shard["accepted"] == len(events)
        assert shard["sheds"] >= 1
        assert shard["restarts"] == 0  # degradation is not a restart

        # The episode is on the manager's own event stream.
        manager_events = list(
            read_events(str(tmp_path / "events" / "manager.jsonl"))
        )
        degraded = [e for e in manager_events if e["type"] == "shard_degraded"]
        recovered = [
            e for e in manager_events if e["type"] == "shard_recovered"
        ]
        assert len(degraded) == len(recovered) == 1
        assert degraded[0]["reason"] == "heartbeat_stall"
        assert recovered[0]["degraded_s"] > 0.0


class TestHealthSnapshot:
    def test_health_reports_the_full_picture(self, tiny_registry, tmp_path):
        events = _wire_stream(4)
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        try:
            _submit_all(manager, events)
            _wait(
                lambda: manager.stats()["processed"] >= len(events),
                what="stream processed",
            )
            health = manager.health()
            shard = health["shards"]["fx8320"]
            assert shard["alive"] is True
            assert shard["degraded"] is False
            assert shard["degraded_reason"] is None
            assert shard["restarts"] == 0
            assert shard["recoveries"] == 0
            assert shard["heartbeat_age_s"] is not None
            assert shard["heartbeat_age_s"] < 60.0
            assert shard["delivered"] == len(events)
            assert 0 <= shard["checkpointed_delivered"] <= len(events)
            assert shard["pending"] == 0
            assert shard["inflight"] <= len(events)
            assert health["restarts"] == 0
        finally:
            manager.stop()


class TestExactZeroLoss:
    def test_kill_with_checkpoint_loses_and_duplicates_nothing(
        self, tiny_registry, tmp_path
    ):
        """SIGKILL mid-stream: the ledger redelivers the checkpoint gap
        and the restored pipeline applies every interval exactly once --
        counted exactly, not within a slack bound."""
        events = _wire_stream(20)
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        handle = manager.shards["fx8320"]
        try:
            _submit_all(manager, events[: len(events) // 2])
            _wait(
                lambda: manager.stats()["processed"] >= 8,
                what="progress before the kill",
            )
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(timeout=10.0)
            assert manager.ensure_alive() == 1
            _submit_all(manager, events[len(events) // 2:])
        finally:
            final = manager.stop()
        shard = final["shards"]["fx8320"]
        assert shard["accepted"] == len(events)
        assert shard["processed"] == len(events)  # exact: zero loss
        assert shard["restarts"] == 1

        # Exactly once, per interval: every applied decision carries a
        # unique delivery index and none is missing.
        decisions = [
            e
            for e in read_events(
                str(tmp_path / "events" / "shard-fx8320.jsonl")
            )
            if e["type"] == "decision"
        ]
        indices = [e["delivery_index"] for e in decisions]
        assert sorted(indices) == list(range(len(events)))


@pytest.mark.slow_kill
class TestKillStorm:
    def test_repeated_kill_cycles_stay_exactly_once(
        self, tiny_registry, tmp_path
    ):
        events = _wire_stream(30)
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        handle = manager.shards["fx8320"]
        kills = 0
        try:
            chunk = len(events) // 4
            for round_no in range(4):
                _submit_all(
                    manager, events[round_no * chunk: (round_no + 1) * chunk]
                )
                if round_no < 3:
                    _wait(
                        lambda: manager.stats()["processed"] > 0,
                        what="progress in round {}".format(round_no),
                    )
                    os.kill(handle.process.pid, signal.SIGKILL)
                    handle.process.join(timeout=10.0)
                    kills += 1
                    assert manager.ensure_alive() == 1
            _submit_all(manager, events[4 * chunk:])
        finally:
            final = manager.stop()
        shard = final["shards"]["fx8320"]
        assert kills == 3
        assert shard["restarts"] == 3
        assert shard["accepted"] == len(events)
        assert shard["processed"] == len(events)
        decisions = [
            e
            for e in read_events(
                str(tmp_path / "events" / "shard-fx8320.jsonl")
            )
            if e["type"] == "decision"
        ]
        assert sorted(e["delivery_index"] for e in decisions) == list(
            range(len(events))
        )
