"""The serve wire protocol and the atomic checkpoint plumbing.

Contracts pinned here:

- a sample survives the wire round-trip bit-exactly (JSON float
  serialisation is repr-based, so ``float == float`` holds);
- every malformed shape is rejected with :class:`ProtocolError`, never
  a crash deeper in the pipeline;
- checkpoints are atomic (tmp + ``os.replace``), and a corrupt or
  future-versioned checkpoint reads as a cold start, not a fatal error.
"""

import json
import os

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import CoreAssignment, Platform
from repro.obs.events import SCHEMA_VERSION
from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    read_checkpoint,
    write_checkpoint,
)
from repro.serve.protocol import (
    ACCEPTED,
    ProtocolError,
    decode_line,
    encode,
    parse_telemetry,
    response,
    sample_from_wire,
    sample_to_wire,
    telemetry_line,
)
from repro.workloads.synthetic import make_cpu_bound


@pytest.fixture(scope="module")
def sample():
    platform = Platform(FX8320_SPEC, seed=7, power_gating=True)
    platform.set_assignment(
        CoreAssignment.packed([make_cpu_bound("wire-test")])
    )
    platform.step()
    return platform.step()


class TestWireRoundTrip:
    def test_sample_survives_json_bit_exactly(self, sample):
        payload = json.loads(json.dumps(sample_to_wire(sample)))
        rebuilt = sample_from_wire(payload, FX8320_SPEC)
        assert [vf.index for vf in rebuilt.cu_vfs] == [
            vf.index for vf in sample.cu_vfs
        ]
        assert rebuilt.nb_vf.index == sample.nb_vf.index
        assert rebuilt.power_samples == list(sample.power_samples)
        assert rebuilt.measured_power == sample.measured_power
        assert rebuilt.temperature == sample.temperature
        assert rebuilt.interval_s == sample.interval_s
        for got, want in zip(rebuilt.core_events, sample.core_events):
            assert got.as_list() == want.as_list()

    def test_ground_truth_defaults_to_observables(self, sample):
        payload = sample_to_wire(sample)
        rebuilt = sample_from_wire(payload, FX8320_SPEC)
        # A real node cannot know ground truth; the wire fills it with
        # the observable stand-ins so scoring paths degrade gracefully.
        assert rebuilt.true_power == rebuilt.measured_power
        for true, est in zip(rebuilt.true_core_events, rebuilt.core_events):
            assert true.as_list() == est.as_list()

    def test_telemetry_line_parses_back(self, sample):
        line = telemetry_line("fx8320-n00", "fx8320", 41, sample)
        event = parse_telemetry(decode_line(line))
        assert event["node"] == "fx8320-n00"
        assert event["sku"] == "fx8320"
        assert event["interval"] == 41
        rebuilt = sample_from_wire(event["sample"], FX8320_SPEC)
        assert rebuilt.measured_power == sample.measured_power

    def test_response_lines(self):
        payload = decode_line(response(ACCEPTED, shard="fx8320"))
        assert payload == {"status": "accepted", "shard": "fx8320"}


class TestValidation:
    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"\xff\xfe not json\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")

    def test_wrong_event_type_rejected(self):
        with pytest.raises(ProtocolError, match="telemetry"):
            parse_telemetry({"v": SCHEMA_VERSION, "type": "drift"})

    def test_newer_schema_rejected(self):
        with pytest.raises(ProtocolError, match="newer than supported"):
            parse_telemetry(
                {"v": SCHEMA_VERSION + 1, "type": "telemetry",
                 "node": "n0", "sku": "fx8320", "sample": {}}
            )

    def test_missing_required_fields_rejected(self, sample):
        obj = decode_line(telemetry_line("n0", "fx8320", 0, sample))
        del obj["sku"]
        with pytest.raises(ProtocolError, match="missing required fields"):
            parse_telemetry(obj)

    def test_missing_sample_fields_rejected(self, sample):
        payload = sample_to_wire(sample)
        del payload["power_samples"]
        del payload["temperature"]
        with pytest.raises(ProtocolError, match="power_samples, temperature"):
            sample_from_wire(payload, FX8320_SPEC)

    def test_unknown_vf_index_rejected(self, sample):
        payload = sample_to_wire(sample)
        payload["nb_vf"] = 99
        with pytest.raises(ProtocolError, match="unknown VF index"):
            sample_from_wire(payload, FX8320_SPEC)

    def test_topology_mismatch_rejected(self, sample):
        payload = sample_to_wire(sample)
        payload["cu_vfs"] = payload["cu_vfs"][:-1]
        with pytest.raises(ProtocolError, match="CU VF states"):
            sample_from_wire(payload, FX8320_SPEC)
        payload = sample_to_wire(sample)
        payload["core_events"] = payload["core_events"][:3]
        with pytest.raises(ProtocolError, match="core event vectors"):
            sample_from_wire(payload, FX8320_SPEC)

    def test_nonpositive_interval_rejected(self, sample):
        payload = sample_to_wire(sample)
        payload["interval_s"] = 0.0
        with pytest.raises(ProtocolError, match="interval_s"):
            sample_from_wire(payload, FX8320_SPEC)

    def test_empty_node_rejected(self, sample):
        obj = decode_line(telemetry_line("n0", "fx8320", 0, sample))
        obj["node"] = ""
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_telemetry(obj)

    def test_seq_accepts_nonnegative_integers_only(self, sample):
        obj = decode_line(telemetry_line("n0", "fx8320", 0, sample))
        assert parse_telemetry(dict(obj, seq=0))["seq"] == 0
        assert parse_telemetry(dict(obj, seq=10**9))["seq"] == 10**9
        assert "seq" not in parse_telemetry(obj)  # optional
        for bad in (-1, 1.5, "3", True, [0], {}):
            with pytest.raises(ProtocolError, match="'seq'"):
                parse_telemetry(dict(obj, seq=bad))


class TestCheckpointPlumbing:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "state.json")
        state = {"x": 0.1 + 0.2, "nested": {"values": [1.5, None, "a"]}}
        write_checkpoint(path, state)
        loaded = read_checkpoint(path)
        assert loaded["checkpoint_version"] == CHECKPOINT_VERSION
        assert loaded["x"] == state["x"]  # bit-exact float round-trip
        assert loaded["nested"] == state["nested"]

    def test_missing_reads_as_none(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "absent.json")) is None

    def test_corrupt_reads_as_none(self, tmp_path):
        path = str(tmp_path / "torn.json")
        with open(path, "w") as handle:
            handle.write('{"checkpoint_version": 1, "trunc')
        assert read_checkpoint(path) is None

    def test_future_version_reads_as_none(self, tmp_path):
        path = str(tmp_path / "future.json")
        with open(path, "w") as handle:
            json.dump({"checkpoint_version": CHECKPOINT_VERSION + 1}, handle)
        assert read_checkpoint(path) is None

    def test_replace_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = str(tmp_path / "state.json")
        write_checkpoint(path, {"a": 1})
        write_checkpoint(path, {"a": 2})
        assert read_checkpoint(path)["a"] == 2
        assert os.listdir(str(tmp_path)) == ["state.json"]

    def test_failed_write_keeps_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "state.json")
        write_checkpoint(path, {"a": 1})
        with pytest.raises(TypeError):
            write_checkpoint(path, {"a": object()})  # not JSON-serialisable
        assert read_checkpoint(path)["a"] == 1
        assert os.listdir(str(tmp_path)) == ["state.json"]

    def test_checkpointer_period_and_counters(self, tmp_path):
        path = str(tmp_path / "state.json")
        calls = {"n": 0}

        def state_fn():
            calls["n"] += 1
            return {"seen": calls["n"]}

        ckpt = Checkpointer(path, state_fn, every_intervals=4)
        ticks = [ckpt.tick() for _ in range(9)]
        assert ticks == [False, False, False, True] * 2 + [False]
        assert ckpt.saves == 2
        ckpt.save()  # the SIGTERM / shutdown path
        assert ckpt.saves == 3
        assert read_checkpoint(path)["seen"] == 3

    def test_checkpointer_rejects_bad_period(self, tmp_path):
        with pytest.raises(ValueError, match="every_intervals"):
            Checkpointer(str(tmp_path / "x.json"), dict, every_intervals=0)

    def test_encode_appends_newline(self):
        assert encode({"a": 1}).endswith(b"\n")
