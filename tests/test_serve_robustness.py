"""Crash recovery: SIGKILL a shard worker mid-run and carry on.

The serve restart guarantees under test:

- the supervisor re-forks a killed worker and it resumes from its last
  checkpoint -- no retrain, no refusal to boot;
- no accepted interval is lost: the manager's in-flight ledger
  redelivers everything at or past the checkpoint's durable watermark
  (the bounds below allow the legacy one-period slack but the ledger
  actually achieves zero loss -- pinned exactly by the storm suite);
- the restarted worker does not re-emit events the shard's JSONL file
  already holds -- specifically, no duplicate ``cap_reallocation`` --
  because the event stream is flushed only at checkpoint boundaries and
  therefore never runs ahead of the restored state;
- a SIGTERM'd worker checkpoints on the way out, so even an unclean
  drain loses nothing that was already processed.

These tests fork real worker processes (via the session-scoped trained
model, so no retraining) and really ``SIGKILL``/``SIGTERM`` them.
"""

import os
import signal
import time

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.obs.events import read_events
from repro.serve.checkpoint import read_checkpoint
from repro.serve.manager import ShardManager, ShardSpec
from repro.serve.protocol import decode_line, parse_telemetry, telemetry_line

CHECKPOINT_EVERY = 8


def _wire_stream(n_per_node, seed=61):
    """Interleaved parsed telemetry for a two-node fx8320 shard."""
    from repro.hardware.platform import CoreAssignment, Platform
    from repro.workloads.synthetic import make_cpu_bound, make_memory_bound

    platforms = {
        "fx8320-n00": Platform(FX8320_SPEC, seed=seed, power_gating=True),
        "fx8320-n01": Platform(FX8320_SPEC, seed=seed + 1, power_gating=True),
    }
    platforms["fx8320-n00"].set_assignment(
        CoreAssignment.packed([make_cpu_bound("kill-cpu")])
    )
    platforms["fx8320-n01"].set_assignment(
        CoreAssignment.packed([make_memory_bound("kill-mem")])
    )
    events = []
    for k in range(n_per_node):
        for node, platform in platforms.items():
            line = telemetry_line(node, "fx8320", k, platform.step())
            events.append(parse_telemetry(decode_line(line)))
    return events


def _manager(tiny_registry, tmp_path, queue_size=512):
    return ShardManager(
        [
            ShardSpec(
                sku="fx8320",
                spec=FX8320_SPEC,
                ppep=tiny_registry.get(FX8320_SPEC),
                node_names=["fx8320-n00", "fx8320-n01"],
                budget_w=160.0,
            )
        ],
        queue_size=queue_size,
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=CHECKPOINT_EVERY,
        events_dir=str(tmp_path / "events"),
    )


def _submit_all(manager, events):
    for event in events:
        # "shed" (degraded shard) and "retry" (backpressure / crash
        # redelivery draining) both mean back off and resend; poll so
        # the manager sees the heartbeat that ends degradation.
        while manager.submit(event)["status"] in ("retry", "shed"):
            manager.ensure_alive()
            manager.poll()
            time.sleep(0.01)


def _wait_processed(manager, at_least, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if manager.stats()["processed"] >= at_least:
            return
        time.sleep(0.05)
    pytest.fail(
        "worker did not reach {} processed intervals (stats: {})".format(
            at_least, manager.stats()
        )
    )


class TestSigkillRecovery:
    def test_worker_killed_midrun_resumes_from_checkpoint(
        self, tiny_registry, tmp_path
    ):
        total_per_node = 40
        events = _wire_stream(total_per_node)
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        handle = manager.shards["fx8320"]
        try:
            # Phase 1: feed the first half, wait until the worker is past
            # two checkpoint periods, then SIGKILL it -- no warning, no
            # chance to flush anything.
            first_half = events[: len(events) // 2]
            _submit_all(manager, first_half)
            _wait_processed(manager, 3 * CHECKPOINT_EVERY)
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(timeout=10.0)
            assert not handle.process.is_alive()

            # Supervisor notices and re-forks over the same queues.
            assert manager.ensure_alive() == 1
            assert handle.restarts == 1

            # Phase 2: the rest of the stream.
            _submit_all(manager, events[len(events) // 2:])
        finally:
            final = manager.stop()

        shard = final["shards"]["fx8320"]
        accepted = shard["accepted"]
        assert accepted == len(events)
        # At-most-one-checkpoint-period loss: only intervals the dead
        # worker had popped since its last snapshot are gone.  (The kill
        # can also land mid-interval, hence the strict bound is the
        # period, not period - 1.)
        assert shard["processed"] >= accepted - CHECKPOINT_EVERY
        assert shard["processed"] <= accepted
        state = read_checkpoint(str(tmp_path / "ckpt" / "shard-fx8320.json"))
        assert state["processed"] == shard["processed"]

        # No duplicate cap_reallocation: the shard stayed healthy
        # throughout, so across crash + restart exactly one allocation
        # signature was ever news.
        events_on_disk = list(
            read_events(str(tmp_path / "events" / "shard-fx8320.jsonl"))
        )
        reallocs = [
            e for e in events_on_disk if e["type"] == "cap_reallocation"
        ]
        assert len(reallocs) == 1
        # And the event file never ran ahead of the state: every line
        # parses (read_events would have raised) and prediction intervals
        # never exceed what the checkpoint knows about.
        per_node = {"fx8320-n00": 0, "fx8320-n01": 0}
        for e in events_on_disk:
            if e["type"] == "prediction":
                per_node[e["node"]] = max(per_node[e["node"]], e["interval"])
        for node, last_interval in per_node.items():
            assert last_interval < state["intervals"][node]

    def test_queued_telemetry_survives_the_crash(
        self, tiny_registry, tmp_path
    ):
        """Items sitting in the bounded queue at kill time are processed
        by the restarted worker, not lost with the dead one."""
        events = _wire_stream(24)
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        handle = manager.shards["fx8320"]
        try:
            _submit_all(manager, events[:16])
            _wait_processed(manager, CHECKPOINT_EVERY)
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(timeout=10.0)
            # Enqueue more while the worker is dead: the queue buffers.
            for event in events[16:]:
                assert manager.submit(event)["status"] == "accepted"
            manager.ensure_alive()
        finally:
            final = manager.stop()
        shard = final["shards"]["fx8320"]
        # Everything accepted after the restart must be processed; the
        # only permissible loss is the pre-kill checkpoint gap.
        assert shard["processed"] >= len(events) - CHECKPOINT_EVERY


class TestSigtermDrain:
    def test_sigterm_checkpoints_before_exit(self, tiny_registry, tmp_path):
        events = _wire_stream(10)
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        handle = manager.shards["fx8320"]
        try:
            _submit_all(manager, events)
            _wait_processed(manager, len(events))
            os.kill(handle.process.pid, signal.SIGTERM)
            handle.process.join(timeout=10.0)
            assert not handle.process.is_alive()
            state = read_checkpoint(
                str(tmp_path / "ckpt" / "shard-fx8320.json")
            )
            # SIGTERM is the clean path: nothing processed is lost.
            assert state["processed"] == len(events)
        finally:
            manager.stop()

    def test_sigterm_mid_round_keeps_the_aligned_checkpoint(
        self, tiny_registry, tmp_path
    ):
        """A SIGTERM landing mid-allocation-round must not write a
        checkpoint whose watermark covers the round's in-flight items:
        ``state_dict`` drops those samples, so such a snapshot neither
        redelivers them nor retains their round state and the restarted
        decision stream would silently diverge.  The exit snapshot is
        vetoed instead; the last *aligned* checkpoint stays
        authoritative and the ledger redelivers the tail."""
        events = _wire_stream(5)  # 10 lines, rounds close every 2
        manager = _manager(tiny_registry, tmp_path)
        manager.start()
        handle = manager.shards["fx8320"]
        ckpt_path = str(tmp_path / "ckpt" / "shard-fx8320.json")
        try:
            # 9 lines: 4 complete rounds plus one node's lone delivery
            # leaves the round mid-barrier when the SIGTERM lands.
            _submit_all(manager, events[:9])
            _wait_processed(manager, 9)
            os.kill(handle.process.pid, signal.SIGTERM)
            handle.process.join(timeout=10.0)
            assert not handle.process.is_alive()

            # The final snapshot was skipped: the on-disk state is the
            # round-aligned periodic one (8 = CHECKPOINT_EVERY items),
            # not one claiming the mid-round 9th item.
            state = read_checkpoint(ckpt_path)
            assert state["delivered"] == 8
            assert state["processed"] == 8

            # Restart: the ledger redelivers the mid-round tail and the
            # stream finishes round-aligned.
            assert manager.ensure_alive() == 1
            _submit_all(manager, events[9:])
        finally:
            final = manager.stop()
        shard = final["shards"]["fx8320"]
        assert shard["accepted"] == len(events)
        assert shard["processed"] == len(events)
        # The decision stream on disk covers every interval exactly
        # once -- the redelivered item was re-emitted, not duplicated.
        events_on_disk = list(
            read_events(str(tmp_path / "events" / "shard-fx8320.jsonl"))
        )
        per_node = {}
        for e in events_on_disk:
            if e["type"] == "decision":
                per_node.setdefault(e["node"], []).append(e["interval"])
        assert sorted(per_node) == ["fx8320-n00", "fx8320-n01"]
        for intervals in per_node.values():
            assert sorted(intervals) == list(range(5))
