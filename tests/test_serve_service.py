"""The serve stack: shard behavior, backpressure, ingestion, lifecycle.

Routing and backpressure are tested against a :class:`ShardManager`
whose workers are *not* started -- ``submit`` only enqueues, so a
bounded queue with no consumer makes the full/retry path deterministic.
The end-to-end tests then run the real thing: forked workers, a real
TCP socket, checkpoints on disk, and a second service run resuming from
them.
"""

import asyncio
import json

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.obs.events import read_events
from repro.serve.checkpoint import read_checkpoint
from repro.serve.ingest import Ingestor, ingest_lines
from repro.serve.manager import ShardManager, ShardSpec
from repro.serve.protocol import (
    ProtocolError,
    decode_line,
    parse_telemetry,
    telemetry_line,
)
from repro.serve.service import ServeConfig, build_shards, run_service
from repro.serve.shard import ShardPipeline


def _shard_spec(tiny_registry, node_names=("fx8320-n00", "fx8320-n01")):
    return ShardSpec(
        sku="fx8320",
        spec=FX8320_SPEC,
        ppep=tiny_registry.get(FX8320_SPEC),
        node_names=list(node_names),
    )


def _wire_events(node, sku, n, seed=51):
    """Parsed telemetry events as the ingest front-end would hand over."""
    from repro.hardware.platform import CoreAssignment, Platform
    from repro.workloads.synthetic import make_cpu_bound

    platform = Platform(FX8320_SPEC, seed=seed, power_gating=True)
    platform.set_assignment(
        CoreAssignment.packed([make_cpu_bound("serve-test")])
    )
    events = []
    for k in range(n):
        line = telemetry_line(node, sku, k, platform.step())
        events.append(parse_telemetry(decode_line(line)))
    return events


class TestShardPipelineBehavior:
    def test_quarantine_enter_and_exit(self, tiny_registry):
        from repro.obs.events import EventLog

        events = EventLog()
        pipeline = ShardPipeline(
            sku="fx8320", spec=FX8320_SPEC,
            ppep=tiny_registry.get(FX8320_SPEC),
            node_names=["solo"], unhealthy_after=2, events=events,
        )
        wire = _wire_events("solo", "fx8320", 8)
        from repro.serve.protocol import sample_from_wire

        samples = [sample_from_wire(e["sample"], FX8320_SPEC) for e in wire]
        for s in samples[:3]:
            pipeline.process("solo", s)
        # Redeliver the same sample: stale -> BAD -> streak -> quarantine.
        stale = samples[2]
        r1 = pipeline.process("solo", stale)
        r2 = pipeline.process("solo", stale)
        assert not r1["healthy"] or not r2["healthy"]
        assert len(events.of_type("quarantine_enter")) == 1
        # The pinned decision is the slowest VF for every CU.
        slowest = FX8320_SPEC.vf_table.slowest.index
        assert r2["decision"] == [slowest] * FX8320_SPEC.num_cus
        # Fresh telemetry readmits the node.
        for s in samples[3:6]:
            pipeline.process("solo", s)
        assert len(events.of_type("quarantine_exit")) == 1

    def test_unknown_node_rejected(self, tiny_registry):
        pipeline = ShardPipeline(
            sku="fx8320", spec=FX8320_SPEC,
            ppep=tiny_registry.get(FX8320_SPEC), node_names=["a"],
        )
        with pytest.raises(KeyError, match="roster"):
            pipeline.process("stranger", object())

    def test_straggler_round_is_closed_by_lapping(self, tiny_registry):
        """If node a delivers twice before node b delivers once, the
        partial round is allocated rather than held forever."""
        pipeline = ShardPipeline(
            sku="fx8320", spec=FX8320_SPEC,
            ppep=tiny_registry.get(FX8320_SPEC), node_names=["a", "b"],
        )
        from repro.serve.protocol import sample_from_wire

        wire = _wire_events("a", "fx8320", 3)
        samples = [sample_from_wire(e["sample"], FX8320_SPEC) for e in wire]
        pipeline.process("a", samples[0])
        assert pipeline.allocations == 0
        pipeline.process("a", samples[1])  # b never showed: lap closes round
        assert pipeline.allocations == 1

    def test_constructor_validation(self, tiny_registry):
        ppep = tiny_registry.get(FX8320_SPEC)
        with pytest.raises(ValueError, match="at least one node"):
            ShardPipeline("s", FX8320_SPEC, ppep, [])
        with pytest.raises(ValueError, match="unique"):
            ShardPipeline("s", FX8320_SPEC, ppep, ["a", "a"])
        with pytest.raises(ValueError, match="unhealthy_after"):
            ShardPipeline("s", FX8320_SPEC, ppep, ["a"], unhealthy_after=0)


class TestManagerRouting:
    def test_routes_and_backpressures(self, tiny_registry):
        manager = ShardManager([_shard_spec(tiny_registry)], queue_size=2)
        events = _wire_events("fx8320-n00", "fx8320", 3)
        assert manager.submit(events[0])["status"] == "accepted"
        assert manager.submit(events[1])["status"] == "accepted"
        # No worker is draining: the third delivery must backpressure,
        # not silently drop.
        payload = manager.submit(events[2])
        assert payload["status"] == "retry"
        assert payload["retry_after_s"] > 0

    def test_unknown_node_and_sku_mismatch(self, tiny_registry):
        manager = ShardManager([_shard_spec(tiny_registry)])
        event = _wire_events("fx8320-n00", "fx8320", 1)[0]
        with pytest.raises(ProtocolError, match="unknown node"):
            manager.submit(dict(event, node="who"))
        with pytest.raises(ProtocolError, match="belongs to SKU"):
            manager.submit(dict(event, sku="phenom"))

    def test_duplicate_nodes_rejected(self, tiny_registry):
        with pytest.raises(ValueError, match="more than one shard"):
            ShardManager([
                _shard_spec(tiny_registry),
                ShardSpec(sku="fx8320b", spec=FX8320_SPEC,
                          ppep=tiny_registry.get(FX8320_SPEC),
                          node_names=["fx8320-n00"]),
            ])


class TestIngestor:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_tcp_accept_error_and_retry(self, tiny_registry):
        async def scenario():
            manager = ShardManager([_shard_spec(tiny_registry)], queue_size=1)
            ingestor = Ingestor(manager)
            await ingestor.start()
            reader, writer = await asyncio.open_connection(
                ingestor.host, ingestor.port
            )
            wire = _wire_events("fx8320-n00", "fx8320", 2)

            async def ask(line):
                writer.write(line)
                await writer.drain()
                return decode_line(await reader.readline())

            line0 = telemetry_bytes(wire[0])
            assert (await ask(line0))["status"] == "accepted"
            # Queue depth 1, no worker: second line backpressures.
            assert (await ask(telemetry_bytes(wire[1])))["status"] == "retry"
            # Malformed JSON and unroutable nodes are errors, not retries.
            assert (await ask(b"not json\n"))["status"] == "error"
            bad = dict(wire[0], node="stranger")
            assert (await ask(telemetry_bytes(bad)))["status"] == "error"
            writer.close()
            await writer.wait_closed()
            await ingestor.stop()
            assert ingestor.stats.as_dict() == {
                "lines": 4, "accepted": 1, "retried": 1, "errors": 2,
                "duplicates": 0, "sheds": 0,
            }

        def telemetry_bytes(event):
            return (json.dumps(event, sort_keys=True) + "\n").encode()

        self._run(scenario())

    def test_ingest_lines_redelivers_until_accepted(self, tiny_registry):
        manager = ShardManager([_shard_spec(tiny_registry)], queue_size=1)
        wire = _wire_events("fx8320-n00", "fx8320", 2)
        lines = [
            (json.dumps(e, sort_keys=True) + "\n").encode() for e in wire
        ]
        # Fake a worker: every sleep(), drain one item off the queue.
        handle = manager.shards["fx8320"]

        def drain(_delay):
            handle.in_queue.get()

        stats = ingest_lines(manager, lines, sleep=drain)
        assert stats.accepted == 2
        assert stats.retried >= 1  # the bounded queue pushed back
        assert stats.errors == 0

    def test_ingest_lines_counts_bad_lines(self, tiny_registry):
        manager = ShardManager([_shard_spec(tiny_registry)], queue_size=4)
        stats = ingest_lines(manager, [b"garbage\n", b"", b"   \n"])
        assert stats.lines == 1  # blank lines are skipped entirely
        assert stats.errors == 1


class TestServeConfig:
    def test_rejects_unknown_sku(self):
        with pytest.raises(ValueError, match="unknown SKUs"):
            ServeConfig(skus=("fx8320", "epyc"))

    def test_build_shards_prefixes_node_names(self, tiny_registry):
        config = ServeConfig(skus=("fx8320", "phenom"), nodes_per_sku=2)
        shards, fleets = build_shards(tiny_registry, config)
        names = [n for s in shards for n in s.node_names]
        assert names == [
            "fx8320-n00", "fx8320-n01", "phenom-n00", "phenom-n01",
        ]
        assert set(fleets) == {"fx8320", "phenom"}


class TestEndToEnd:
    def test_loopback_processes_everything(self, tiny_registry, tmp_path):
        config = ServeConfig(
            skus=("fx8320",), nodes_per_sku=2, intervals=20, queue_size=8,
            checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_every=16,
            events_dir=str(tmp_path / "events"),
        )
        report = run_service(tiny_registry, config, mode="loopback")
        assert report["accepted"] == 40
        assert report["processed"] == 40
        assert report["client"]["errors"] == 0
        # Zero silent drops: every accepted interval was processed.
        assert report["processed"] == report["accepted"]
        # The shard checkpoint and event ledger are on disk and valid.
        state = read_checkpoint(str(tmp_path / "ckpt" / "shard-fx8320.json"))
        assert state["processed"] == 40
        events = list(
            read_events(str(tmp_path / "events" / "shard-fx8320.jsonl"))
        )
        assert any(e["type"] == "cap_reallocation" for e in events)
        assert any(e["type"] == "prediction" for e in events)

    def test_second_run_resumes_from_checkpoint(self, tiny_registry, tmp_path):
        config = ServeConfig(
            skus=("fx8320",), nodes_per_sku=1, intervals=10, queue_size=8,
            checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=4,
        )
        run_service(tiny_registry, config, mode="loopback")
        path = str(tmp_path / "ckpt" / "shard-fx8320.json")
        assert read_checkpoint(path)["processed"] == 10
        # Same checkpoint dir: the worker restores and keeps counting.
        run_service(tiny_registry, config, mode="loopback")
        assert read_checkpoint(path)["processed"] == 20

    def test_stdin_mode(self, tiny_registry, tmp_path):
        config = ServeConfig(
            skus=("fx8320",), nodes_per_sku=1, intervals=5, queue_size=8,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        shards, fleets = build_shards(tiny_registry, config)
        lines = []
        fleet = fleets["fx8320"]
        for k in range(5):
            for node, sample in zip(fleet.nodes, fleet.step()):
                lines.append(telemetry_line(node.name, "fx8320", k, sample))
        report = run_service(
            tiny_registry, config, mode="stdin", stdin=iter(lines)
        )
        assert report["ingest"]["accepted"] == 5
        assert report["processed"] == 5


class TestCLI:
    def test_serve_subcommand_loopback(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "serve", "--mode", "loopback", "--skus", "fx8320",
            "--nodes-per-sku", "1", "--intervals", "5",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--training", "quick",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "5 intervals processed" in out
        assert "shard fx8320" in out


class TestLineAssembler:
    """The defensive framing layer under the TCP ingest path."""

    def _feed(self, assembler, chunks):
        events = []
        for chunk in chunks:
            events.extend(assembler.feed(chunk))
        return events

    def test_lines_split_across_chunks_reassemble(self):
        from repro.serve.ingest import _LineAssembler

        assembler = _LineAssembler(max_line_bytes=64)
        events = self._feed(assembler, [b'{"a"', b": 1}\n", b'{"b": 2}\n'])
        assert events == [("line", b'{"a": 1}'), ("line", b'{"b": 2}')]
        assert assembler.eof() is None

    def test_oversized_line_reported_exactly_once(self):
        from repro.serve.ingest import _LineAssembler

        assembler = _LineAssembler(max_line_bytes=8)
        # 30 bytes of junk in three chunks, then a newline, then a good
        # line: one oversized event, framing resumes cleanly.
        events = self._feed(
            assembler, [b"x" * 10, b"x" * 10, b"x" * 10, b"\nok\n"]
        )
        assert events == [("oversized", b""), ("line", b"ok")]

    def test_oversized_never_buffers_beyond_one_chunk(self):
        from repro.serve.ingest import _LineAssembler

        assembler = _LineAssembler(max_line_bytes=8)
        for _ in range(100):
            assembler.feed(b"y" * 1024)  # 100 KB of newline-free junk
        assert len(assembler._buf) == 0  # dropped as it arrived
        assert assembler.feed(b"tail\nok\n") == [("line", b"ok")]

    def test_oversized_terminated_line_still_one_event(self):
        from repro.serve.ingest import _LineAssembler

        assembler = _LineAssembler(max_line_bytes=8)
        events = assembler.feed(b"z" * 9 + b"\nok\n")
        assert events == [("oversized", b""), ("line", b"ok")]

    def test_partial_line_surfaces_at_eof(self):
        from repro.serve.ingest import _LineAssembler

        assembler = _LineAssembler(max_line_bytes=64)
        assert assembler.feed(b'{"a": 1}\n{"half') == [("line", b'{"a": 1}')]
        assert assembler.eof() == b'{"half'

    def test_eof_while_skipping_oversized_reports_nothing(self):
        from repro.serve.ingest import _LineAssembler

        assembler = _LineAssembler(max_line_bytes=8)
        assembler.feed(b"x" * 20)
        assert assembler.eof() is None  # the junk is gone, not a "line"


class TestHostileInput:
    """The TCP front-end against a hostile byte stream: every abuse gets
    an ``error`` response line (with ``seq`` echoed when readable) and
    the connection -- and the service -- survive."""

    def _scenario(self, tiny_registry, abuse):
        async def run():
            manager = ShardManager([_shard_spec(tiny_registry)], queue_size=8)
            ingestor = Ingestor(manager)
            await ingestor.start()
            reader, writer = await asyncio.open_connection(
                ingestor.host, ingestor.port
            )
            result = await abuse(reader, writer)
            await ingestor.stop()
            return result, ingestor.stats.as_dict()

        return asyncio.run(run())

    def test_invalid_utf8_is_an_error_not_a_crash(self, tiny_registry):
        async def abuse(reader, writer):
            writer.write(b"\xff\xfe garbage bytes \x80\n")
            await writer.drain()
            first = decode_line(await reader.readline())
            # The connection survives: a valid line still goes through.
            good = _wire_events("fx8320-n00", "fx8320", 1)[0]
            writer.write((json.dumps(good, sort_keys=True) + "\n").encode())
            await writer.drain()
            second = decode_line(await reader.readline())
            writer.close()
            return first, second

        (first, second), stats = self._scenario(tiny_registry, abuse)
        assert first["status"] == "error"
        assert second["status"] == "accepted"
        assert stats["errors"] == 1
        assert stats["accepted"] == 1

    def test_oversized_line_bounded_and_answered(self, tiny_registry):
        from repro.serve.ingest import MAX_LINE_BYTES

        async def abuse(reader, writer):
            # Stream 2x the limit without a newline, then terminate it.
            for _ in range(2 * MAX_LINE_BYTES // 65536):
                writer.write(b"A" * 65536)
                await writer.drain()
            writer.write(b"\n")
            await writer.drain()
            first = decode_line(await reader.readline())
            good = _wire_events("fx8320-n00", "fx8320", 1)[0]
            writer.write((json.dumps(good, sort_keys=True) + "\n").encode())
            await writer.drain()
            second = decode_line(await reader.readline())
            writer.close()
            return first, second

        (first, second), stats = self._scenario(tiny_registry, abuse)
        assert first["status"] == "error"
        assert "byte limit" in first["reason"]
        assert second["status"] == "accepted"

    def test_partial_line_at_eof_gets_a_final_error(self, tiny_registry):
        async def abuse(reader, writer):
            writer.write(b'{"type": "telemetry", "node"')  # no newline
            await writer.drain()
            writer.write_eof()
            line = await reader.readline()
            writer.close()
            return decode_line(line)

        payload, stats = self._scenario(tiny_registry, abuse)
        assert payload["status"] == "error"
        assert "partial line" in payload["reason"]
        assert stats["errors"] == 1

    def test_error_responses_echo_the_seq(self, tiny_registry):
        async def abuse(reader, writer):
            # Well-formed JSON with a seq, but an unroutable node: the
            # error response must carry the seq back so a resilient
            # client can settle the in-flight send.
            writer.write(b'{"type": "telemetry", "node": "who", "seq": 7}\n')
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return decode_line(line)

        payload, _stats = self._scenario(tiny_registry, abuse)
        assert payload["status"] == "error"
        assert payload["seq"] == 7
        # The node is echoed too: seq alone cannot name an in-flight
        # request, because per-node counters advance in lockstep and
        # collide across nodes.
        assert payload["node"] == "who"

    def test_accepted_responses_echo_node_and_seq(self, tiny_registry):
        async def abuse(reader, writer):
            good = _wire_events("fx8320-n00", "fx8320", 1)[0]
            good["seq"] = 3
            writer.write((json.dumps(good, sort_keys=True) + "\n").encode())
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return decode_line(line)

        payload, _stats = self._scenario(tiny_registry, abuse)
        assert payload["status"] == "accepted"
        assert payload["seq"] == 3
        assert payload["node"] == "fx8320-n00"


class TestIngestLinesWaitCap:
    def test_permanently_stuck_queue_raises_instead_of_stalling(
        self, tiny_registry
    ):
        """A dead shard must surface as an error after the cumulative
        wait cap, not block the stdin loop forever."""
        manager = ShardManager(
            [_shard_spec(tiny_registry)], queue_size=1, retry_after_s=0.5
        )
        wire = _wire_events("fx8320-n00", "fx8320", 2)
        lines = [
            (json.dumps(e, sort_keys=True) + "\n").encode() for e in wire
        ]
        waits = []
        with pytest.raises(RuntimeError, match="stuck or dead"):
            # No worker drains the queue: line 2 backpressures forever.
            ingest_lines(
                manager, lines, sleep=waits.append, max_wait_s=2.0
            )
        # The loop gave up once the *cumulative* wait would cross the
        # cap -- after ~2s of budgeted back-off, not minutes.
        assert sum(waits) <= 2.0
