"""Unit tests for the 152-combination roster."""

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.workloads.suites import (
    BenchmarkCombination,
    NPB_PROGRAMS,
    PARSEC_PROGRAMS,
    SPEC_PROGRAMS,
    Suite,
    build_roster,
    npb_runs,
    parsec_runs,
    single_threaded_programs,
    spec_combinations,
    spec_program,
)


class TestRosterStructure:
    def test_total_is_152(self):
        assert len(build_roster()) == 152

    def test_spec_structure_29_15_10_7(self):
        combos = spec_combinations()
        assert len(combos) == 61
        sizes = [len(c.workloads) for c in combos]
        assert sizes.count(1) == 29
        assert sizes.count(2) == 15
        assert sizes.count(3) == 10
        assert sizes.count(4) == 7

    def test_parsec_is_51_runs(self):
        assert len(parsec_runs()) == 51

    def test_npb_is_40_runs(self):
        assert len(npb_runs()) == 40

    def test_names_are_unique(self):
        names = [c.name for c in build_roster()]
        assert len(names) == len(set(names))

    def test_program_counts(self):
        assert len(SPEC_PROGRAMS) == 29
        assert len(PARSEC_PROGRAMS) == 13
        assert len(NPB_PROGRAMS) == 10

    def test_single_threaded_is_52(self):
        programs = single_threaded_programs()
        assert len(programs) == 52
        assert len({p.name for p in programs}) == 52


class TestPrograms:
    def test_spec_program_by_prefix_or_full_name(self):
        assert spec_program("433") is spec_program("433.milc")

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            spec_program("999")

    def test_milc_is_memory_bound_sjeng_is_not(self):
        milc = spec_program("433")
        sjeng = spec_program("458")
        assert milc.memory_boundness(3.5) > 3 * sjeng.memory_boundness(3.5)

    def test_rapid_phase_programs_are_volatile(self):
        from repro.workloads.suites import npb_program, parsec_program

        for wl in (parsec_program("dedup"), npb_program("DC"), npb_program("IS")):
            shortest = min(p.instructions for p in wl.phases)
            assert shortest < 4e8  # flips within a 200 ms interval

    def test_threads_share_one_workload_object(self):
        run = next(c for c in parsec_runs() if c.name == "blackscholes-4t")
        assert len(run.workloads) == 4
        assert len({id(w) for w in run.workloads}) == 1


class TestAssignments:
    def test_multiprogram_spreads_one_per_cu(self):
        combo = next(c for c in spec_combinations() if len(c.workloads) == 4)
        assignment = combo.assignment(FX8320_SPEC)
        cores = assignment.core_ids
        cus = {FX8320_SPEC.cu_of_core(c) for c in cores}
        assert len(cus) == 4  # one program per CU

    def test_multithread_packs_consecutively(self):
        run = next(c for c in npb_runs() if c.name == "CG-4t")
        assignment = run.assignment(FX8320_SPEC)
        assert list(assignment.core_ids) == [0, 1, 2, 3]

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            BenchmarkCombination(
                name="bad",
                suite=Suite.SPEC,
                workloads=(spec_program("433"),),
                kind="weird",
            )

    def test_suite_labels(self):
        assert Suite.SPEC.label == "SPE"
        assert Suite.PARSEC.label == "PAR"
        assert Suite.NPB.label == "NPB"
