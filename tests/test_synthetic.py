"""Unit tests for the synthetic workload generators."""

import pytest

from repro.workloads.synthetic import (
    ProgramProfile,
    make_cpu_bound,
    make_memory_bound,
    make_mixed,
    make_phased,
    make_program,
)


class TestProfiles:
    def test_axes_validated(self):
        with pytest.raises(ValueError):
            ProgramProfile(name="x", memory_intensity=1.5)
        with pytest.raises(ValueError):
            ProgramProfile(name="x", num_phases=0)

    def test_generation_is_deterministic(self):
        a = make_program(ProgramProfile(name="determinism-check"))
        b = make_program(ProgramProfile(name="determinism-check"))
        assert len(a.phases) == len(b.phases)
        for pa, pb in zip(a.phases, b.phases):
            assert pa == pb

    def test_different_names_differ(self):
        a = make_program(ProgramProfile(name="prog-a"))
        b = make_program(ProgramProfile(name="prog-b"))
        assert any(pa != pb for pa, pb in zip(a.phases, b.phases))

    def test_phase_count_respected(self):
        wl = make_program(ProgramProfile(name="x", num_phases=7))
        assert len(wl.phases) == 7


class TestBehaviouralAxes:
    def test_memory_bound_has_more_memory_time(self):
        mem = make_memory_bound("axis-mem")
        cpu = make_cpu_bound("axis-cpu")
        assert mem.average_mem_ns() > 5 * cpu.average_mem_ns()

    def test_memory_bound_misses_more(self):
        mem = make_memory_bound("axis-mem2")
        cpu = make_cpu_bound("axis-cpu2")
        mem_miss = sum(p.l2_miss_per_inst for p in mem.phases) / len(mem.phases)
        cpu_miss = sum(p.l2_miss_per_inst for p in cpu.phases) / len(cpu.phases)
        assert mem_miss > 5 * cpu_miss

    def test_cpu_bound_is_branchier(self):
        cpu = make_cpu_bound("axis-cpu3")
        mem = make_memory_bound("axis-mem3")
        cpu_br = sum(p.branch_per_inst for p in cpu.phases) / len(cpu.phases)
        mem_br = sum(p.branch_per_inst for p in mem.phases) / len(mem.phases)
        assert cpu_br > mem_br

    def test_exposure_capped_below_half_at_vf5(self):
        # The decoupling property: even the most memory-bound analog
        # exposes well under half its time at 3.5 GHz.
        mem = make_memory_bound("axis-mem4")
        assert mem.memory_boundness(3.5) < 0.55

    def test_phased_workload_has_short_phases(self):
        volatile = make_phased("axis-phased")
        steady = make_cpu_bound("axis-steady")
        v_len = min(p.instructions for p in volatile.phases)
        s_len = min(p.instructions for p in steady.phases)
        assert v_len < s_len / 5
        # Short enough to flip several times within a 200 ms interval
        # at 3.5 GHz (~7e8 cycles).
        assert v_len < 4e8

    def test_mixed_sits_between(self):
        mixed = make_mixed("axis-mixed")
        mem = make_memory_bound("axis-mem5")
        cpu = make_cpu_bound("axis-cpu5")
        assert (
            cpu.average_mem_ns() < mixed.average_mem_ns() < mem.average_mem_ns()
        )

    def test_all_phases_valid(self):
        # Construction enforces invariants; generation must not trip them.
        for factory in (make_cpu_bound, make_memory_bound, make_mixed, make_phased):
            wl = factory("validity-{}".format(factory.__name__))
            for p in wl.phases:
                assert p.ccpi > 0
                assert p.mem_ns >= 0
                assert p.mispredict_per_inst <= p.branch_per_inst
                assert 0 <= p.l3_miss_ratio <= 1
