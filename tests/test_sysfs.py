"""SysfsBackend over a fake cpufreq/RAPL tree: mapping, faults, storms.

No hardware, no privileges: every test builds a miniature ``/sys``-shaped
directory under ``tmp_path`` and points the backend's configurable root
at it.  The contracts under test:

- honest capabilities (``can_set_vf`` follows ``scaling_setspeed``
  presence);
- kHz -> nearest-VF mapping and RAPL ``energy_uj`` deltas with
  wraparound at ``max_energy_range_uj``;
- OS-error classification: missing node -> ``CapabilityError``,
  ``EIO`` -> transient ``BackendIOError``, ``ETIMEDOUT`` ->
  ``BackendTimeout``;
- the retry contract: a raising read consumes no interval (the energy
  baseline and interval cursor commit only after every file read
  succeeded);
- a guarded injected-EIO storm (both a raw ``_read_text`` failpoint and
  a :class:`FlakyBackend` wrap) survives with zero crashes and bounded
  retries.
"""

import errno
import os

import pytest

from repro.backends import (
    BackendGuard,
    BackendIOError,
    BackendTimeout,
    CapabilityError,
    FlakyBackend,
    FlakySpec,
    GuardConfig,
    SysfsBackend,
    classify_os_error,
)
from repro.hardware.microarch import FX8320_SPEC

INTERVAL_S = 0.2


def make_tree(
    root,
    cus=4,
    freq_khz=3500000,
    energy_uj=1000000,
    max_range_uj=262143328850,
    setspeed=True,
    thermal_mc=45000,
):
    """A miniature /sys-shaped tree the backend can read."""
    for n in range(cus):
        policy = root / "cpu{}".format(n) / "cpufreq"
        policy.mkdir(parents=True)
        (policy / "scaling_cur_freq").write_text("{}\n".format(freq_khz))
        if setspeed:
            (policy / "scaling_setspeed").write_text("<unsupported>\n")
    rapl = root / "intel_rapl" / "intel_rapl:0"
    rapl.mkdir(parents=True)
    (rapl / "energy_uj").write_text("{}\n".format(energy_uj))
    (rapl / "max_energy_range_uj").write_text("{}\n".format(max_range_uj))
    if thermal_mc is not None:
        thermal = root / "thermal"
        thermal.mkdir()
        (thermal / "temp").write_text("{}\n".format(thermal_mc))
    return root


def set_energy(root, value_uj, domain="intel_rapl:0"):
    (root / "intel_rapl" / domain / "energy_uj").write_text(
        "{}\n".format(int(value_uj))
    )


@pytest.fixture()
def tree(tmp_path):
    return make_tree(tmp_path / "sys")


@pytest.fixture()
def backend(tree):
    return SysfsBackend(str(tree), interval_s=INTERVAL_S)


class TestCapabilities:
    def test_descriptor_is_honest(self, tree, backend):
        caps = backend.capabilities()
        assert caps.can_set_vf  # scaling_setspeed exists on every policy
        assert not caps.can_set_power_gating
        assert not caps.finite
        assert caps.num_cus == FX8320_SPEC.num_cus
        assert caps.num_cores == FX8320_SPEC.num_cores
        assert caps.interval_s == INTERVAL_S
        assert caps.name == "sysfs:{}".format(tree)

    def test_no_setspeed_means_recorded_noops(self, tmp_path):
        root = make_tree(tmp_path / "sys", setspeed=False)
        backend = SysfsBackend(str(root))
        assert not backend.capabilities().can_set_vf
        slow = FX8320_SPEC.vf_table.slowest
        backend.set_vf(0, slow)  # must not raise, must not touch files
        assert backend.requested_vfs == [(0, slow)]

    def test_power_gating_is_a_capability_error(self, backend):
        assert backend.get_power_gating() is False
        with pytest.raises(CapabilityError, match="power-gating"):
            backend.set_power_gating(True)


class TestFrequencyMapping:
    def test_cur_freq_maps_to_nearest_vf(self, tree, backend):
        assert backend.get_vf(0).index == 5  # 3.5 GHz
        for n in range(4):
            (tree / "cpu{}".format(n) / "cpufreq" / "scaling_cur_freq"
             ).write_text("1400000\n")
        assert backend.get_vf(0).index == 1  # 1.4 GHz

    def test_set_vf_writes_khz(self, tree, backend):
        backend.set_vf(2, FX8320_SPEC.vf_table.by_index(3))  # 2.3 GHz
        written = (
            tree / "cpu2" / "cpufreq" / "scaling_setspeed"
        ).read_text().strip()
        assert written == "2300000"

    def test_fewer_policies_than_cus_fold(self, tmp_path):
        root = make_tree(tmp_path / "sys", cus=2)
        backend = SysfsBackend(str(root))
        # CUs 2 and 3 reuse policies 0 and 1 -- reads still resolve.
        assert backend.get_vf(3).index == 5

    def test_out_of_range_cu_rejected(self, backend):
        with pytest.raises(ValueError, match="out of range"):
            backend.get_vf(99)


class TestEnergyReads:
    def test_first_read_has_no_baseline(self, backend):
        first = backend.read_interval()
        assert first.index == 0
        assert first.measured_power == 0.0
        assert first.temperature == pytest.approx(45.0 + 273.15)
        assert len(first.cu_vfs) == FX8320_SPEC.num_cus
        assert len(first.core_events) == FX8320_SPEC.num_cores

    def test_energy_delta_becomes_power(self, tree, backend):
        backend.read_interval()
        set_energy(tree, 1000000 + 8_000_000)  # +8 J over 0.2 s
        second = backend.read_interval()
        assert second.index == 1
        assert second.measured_power == pytest.approx(40.0)
        assert second.power_samples == [pytest.approx(40.0)]
        assert second.true_power == second.measured_power

    def test_wraparound_is_unwrapped(self, tmp_path):
        max_range = 1_000_000_000
        root = make_tree(
            tmp_path / "sys",
            energy_uj=max_range - 2_000_000,
            max_range_uj=max_range,
        )
        backend = SysfsBackend(str(root), interval_s=INTERVAL_S)
        backend.read_interval()
        set_energy(root, 6_000_000)  # wrapped: 2 J to the edge + 6 J
        sample = backend.read_interval()
        assert sample.measured_power == pytest.approx(8e6 * 1e-6 / 0.2)

    def test_multiple_rapl_domains_sum(self, tmp_path):
        root = make_tree(tmp_path / "sys")
        second = root / "intel_rapl" / "intel_rapl:1"
        second.mkdir()
        (second / "energy_uj").write_text("500000\n")
        (second / "max_energy_range_uj").write_text("262143328850\n")
        backend = SysfsBackend(str(root), interval_s=INTERVAL_S)
        backend.read_interval()
        set_energy(root, 1000000 + 4_000_000)
        set_energy(root, 500000 + 2_000_000, domain="intel_rapl:1")
        sample = backend.read_interval()
        assert sample.measured_power == pytest.approx(30.0)  # 6 J / 0.2 s

    def test_missing_thermal_uses_default(self, tmp_path):
        root = make_tree(tmp_path / "sys", thermal_mc=None)
        sample = SysfsBackend(str(root)).read_interval()
        assert sample.temperature == pytest.approx(318.15)


class TestErrorTaxonomy:
    def test_classify_os_error_mapping(self):
        cases = [
            (errno.ENOENT, CapabilityError),
            (errno.EACCES, CapabilityError),
            (errno.ENODEV, CapabilityError),
            (errno.ETIMEDOUT, BackendTimeout),
            (errno.EAGAIN, BackendTimeout),
            (errno.EIO, BackendIOError),
            (errno.ENXIO, BackendIOError),
        ]
        for code, expected in cases:
            exc = OSError(code, os.strerror(code))
            mapped = classify_os_error(exc, "reading node")
            assert isinstance(mapped, expected), errno.errorcode[code]
            assert "reading node" in str(mapped)

    def test_missing_node_is_capability_error(self, tree, backend):
        os.unlink(str(tree / "cpu0" / "cpufreq" / "scaling_cur_freq"))
        with pytest.raises(CapabilityError, match="scaling_cur_freq"):
            backend.get_vf(0)

    def test_empty_tree_is_capability_error(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        backend = SysfsBackend(str(empty))
        assert not backend.capabilities().can_set_vf
        with pytest.raises(CapabilityError, match="energy domains"):
            backend.read_interval()
        with pytest.raises(CapabilityError, match="no cpu"):
            backend.get_vf(0)

    def test_eio_maps_to_transient_io_error(self, backend, monkeypatch):
        def eio(relpath):
            raise OSError(errno.EIO, "Input/output error")

        monkeypatch.setattr(backend, "_read_text", eio)
        with pytest.raises(BackendIOError):
            backend.read_interval()

    def test_timeout_maps_to_backend_timeout(self, backend, monkeypatch):
        def slow(relpath):
            raise OSError(errno.ETIMEDOUT, "Connection timed out")

        monkeypatch.setattr(backend, "_read_text", slow)
        with pytest.raises(BackendTimeout):
            backend.read_interval()

    def test_garbage_node_content_is_persistent(self, tree, backend):
        (tree / "intel_rapl" / "intel_rapl:0" / "energy_uj").write_text(
            "<unavailable>\n"
        )
        with pytest.raises(CapabilityError, match="not a number"):
            backend.read_interval()


class TestRetryContract:
    def test_failed_read_consumes_no_interval(self, tree, backend):
        backend.read_interval()
        set_energy(tree, 1000000 + 8_000_000)

        real = backend._read_text
        fail = {"left": 2}

        def flaky(relpath):
            if relpath.endswith("energy_uj") and fail["left"] > 0:
                fail["left"] -= 1
                raise OSError(errno.EIO, "Input/output error")
            return real(relpath)

        backend._read_text = flaky
        for _ in range(2):
            with pytest.raises(BackendIOError):
                backend.read_interval()
        # Two failed attempts later: same index, same baseline, so the
        # retried read reports the same one-interval delta.
        sample = backend.read_interval()
        assert sample.index == 1
        assert sample.measured_power == pytest.approx(40.0)


class TestGuardedStorms:
    def test_injected_eio_storm_survives_guarded(self, tree, backend):
        # Raw failpoint at the file-read chokepoint: every tenth read
        # of any node fails with EIO, the way a flaky hwmon chip does.
        # (The modulus exceeds the per-attempt call count, so a retried
        # attempt -- which resumes right after the failing call -- can
        # always complete before the next failpoint.)
        real = backend._read_text
        calls = {"n": 0}

        def stormy(relpath):
            calls["n"] += 1
            if calls["n"] % 10 == 0:
                raise OSError(errno.EIO, "Input/output error")
            return real(relpath)

        backend._read_text = stormy
        guard = BackendGuard(
            backend,
            GuardConfig(retries=2),
            seed=11,
            sleep=lambda _s: None,
        )
        energy = 1000000
        powers = []
        for _ in range(40):
            energy += 8_000_000
            set_energy(tree, energy)
            powers.append(guard.read_interval().measured_power)  # no raise
        stats = guard.health()["stats"]
        assert stats["reads"] == 40
        assert stats["retries"] > 0
        assert stats["retries"] <= GuardConfig(retries=2).retries * stats["reads"]
        # Baselines never half-advance: every post-baseline interval
        # reports exactly one interval's energy, retries or not.
        assert all(p == pytest.approx(40.0) for p in powers[1:])

    def test_flaky_wrapped_storm_survives_guarded(self, tree, backend):
        guard = BackendGuard(
            FlakyBackend(
                backend, FlakySpec(io_error_rate=0.3, timeout_rate=0.1),
                seed=5,
            ),
            GuardConfig(retries=3),
            seed=11,
            sleep=lambda _s: None,
        )
        energy = 1000000
        delivered = 0
        for _ in range(60):
            energy += 8_000_000
            set_energy(tree, energy)
            sample = guard.read_interval()  # must never raise
            delivered += 1
            assert sample.measured_power >= 0.0
        assert delivered == 60
        stats = guard.health()["stats"]
        assert stats["retries"] > 0
        assert stats["retries"] <= 3 * stats["reads"]

    def test_persistent_outage_degrades_to_stale(self, tree, backend):
        backend.read_interval()  # establish the energy baseline
        set_energy(tree, 1000000 + 8_000_000)
        guard = BackendGuard(
            backend,
            GuardConfig(retries=1),
            seed=11,
            sleep=lambda _s: None,
        )
        fresh = guard.read_interval()
        assert fresh.measured_power == pytest.approx(40.0)

        def dead(relpath):
            raise OSError(errno.EIO, "Input/output error")

        backend._read_text = dead
        stale = guard.read_interval()  # degraded redelivery, no raise
        assert "stale" in stale.faults
        assert stale.measured_power == fresh.measured_power
