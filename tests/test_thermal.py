"""Unit tests for the RC thermal model."""

import pytest

from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.thermal import ThermalModel


@pytest.fixture
def thermal():
    return ThermalModel(FX8320_SPEC)


class TestSteadyState:
    def test_zero_power_steady_is_ambient(self, thermal):
        assert thermal.steady_state(0.0) == pytest.approx(
            FX8320_SPEC.ambient_temperature
        )

    def test_steady_state_linear_in_power(self, thermal):
        t100 = thermal.steady_state(100.0)
        t50 = thermal.steady_state(50.0)
        ambient = FX8320_SPEC.ambient_temperature
        assert (t100 - ambient) == pytest.approx(2 * (t50 - ambient))

    def test_time_constant(self, thermal):
        expected = FX8320_SPEC.thermal_resistance * FX8320_SPEC.thermal_capacitance
        assert thermal.time_constant() == pytest.approx(expected)


class TestDynamics:
    def test_heats_toward_steady_state(self, thermal):
        target = thermal.steady_state(100.0)
        t0 = thermal.temperature
        thermal.step(100.0, 5.0)
        assert t0 < thermal.temperature < target

    def test_cools_when_power_removed(self, thermal):
        thermal.reset(345.0)
        thermal.step(0.0, 10.0)
        assert thermal.temperature < 345.0

    def test_converges_after_many_time_constants(self, thermal):
        for _ in range(100):
            thermal.step(80.0, thermal.time_constant())
        assert thermal.temperature == pytest.approx(thermal.steady_state(80.0), abs=0.01)

    def test_exact_exponential_step(self, thermal):
        # One time constant closes 1 - 1/e of the gap, exactly.
        import math

        target = thermal.steady_state(100.0)
        start = thermal.temperature
        thermal.step(100.0, thermal.time_constant())
        expected = target + (start - target) * math.exp(-1.0)
        assert thermal.temperature == pytest.approx(expected)

    def test_step_is_stable_for_huge_dt(self, thermal):
        thermal.step(60.0, 1e6)
        assert thermal.temperature == pytest.approx(thermal.steady_state(60.0))

    def test_zero_dt_is_identity(self, thermal):
        t0 = thermal.temperature
        thermal.step(100.0, 0.0)
        assert thermal.temperature == t0

    def test_rejects_negative_dt(self, thermal):
        with pytest.raises(ValueError):
            thermal.step(10.0, -1.0)

    def test_rejects_negative_power(self, thermal):
        with pytest.raises(ValueError):
            thermal.step(-5.0, 1.0)


class TestDiode:
    def test_diode_is_quantized(self, thermal):
        thermal.reset(320.0617)
        reading = thermal.diode_reading()
        quantum = FX8320_SPEC.diode_quantum
        assert reading % quantum == pytest.approx(0.0, abs=1e-9)
        assert abs(reading - 320.0617) <= quantum / 2 + 1e-9

    def test_reset_defaults_to_ambient(self, thermal):
        thermal.step(100.0, 50.0)
        thermal.reset()
        assert thermal.temperature == FX8320_SPEC.ambient_temperature

    def test_initial_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            ThermalModel(FX8320_SPEC, initial_temperature=-1.0)
