"""Unit tests for the thread-packing study's decision logic."""

import pytest

from repro.experiments.thread_packing import PackingPoint, ThreadPackingResult


def point(placement, vf, power, ips):
    return PackingPoint(
        placement=placement, vf_index=vf, power_w=power, throughput_ips=ips
    )


class TestWinner:
    def make(self, spread, packed, cap=50.0):
        return ThreadPackingResult(
            points=[p for p in (spread, packed) if p is not None],
            decisions={cap: (spread, packed)},
        )

    def test_packed_wins_on_throughput(self):
        result = self.make(
            point("spread", 2, 45.0, 1e9), point("packed", 3, 44.0, 1.5e9)
        )
        assert result.winner(50.0) == "packed"

    def test_spread_wins_on_throughput(self):
        result = self.make(
            point("spread", 3, 45.0, 1.5e9), point("packed", 2, 40.0, 1e9)
        )
        assert result.winner(50.0) == "spread"

    def test_tie_within_tolerance(self):
        result = self.make(
            point("spread", 3, 45.0, 1.0e9), point("packed", 3, 40.0, 1.0005e9)
        )
        assert result.winner(50.0) == "tie"

    def test_only_packed_feasible(self):
        result = self.make(None, point("packed", 1, 20.0, 5e8))
        assert result.winner(50.0) == "packed"

    def test_only_spread_feasible(self):
        result = self.make(point("spread", 1, 20.0, 5e8), None)
        assert result.winner(50.0) == "spread"

    def test_neither_feasible(self):
        result = self.make(None, None)
        assert result.winner(50.0) == "neither"


class TestBackgroundSweepCell:
    def test_nb_ratio_excludes_base(self):
        from repro.experiments.background_sweep import SweepCell
        from repro.experiments.common import FixedWorkRun

        cell = SweepCell(
            program="433",
            n_instances=1,
            vf_index=5,
            run=FixedWorkRun(vf_index=5, n_instances=1, time_s=1.0, chip_energy=30.0),
            core_energy=10.0,
            nb_idle_energy=6.0,
            nb_dynamic_energy=4.0,
            base_energy=10.0,
            memory_share=0.4,
        )
        assert cell.nb_energy == pytest.approx(10.0)
        # Ratio over core + NB only; base power excluded by design.
        assert cell.nb_ratio == pytest.approx(0.5)

    def test_nb_ratio_zero_denominator(self):
        from repro.experiments.background_sweep import SweepCell
        from repro.experiments.common import FixedWorkRun

        cell = SweepCell(
            program="x",
            n_instances=1,
            vf_index=1,
            run=FixedWorkRun(vf_index=1, n_instances=1, time_s=1.0, chip_energy=0.0),
            core_energy=0.0,
            nb_idle_energy=0.0,
            nb_dynamic_energy=0.0,
            base_energy=0.0,
            memory_share=0.0,
        )
        assert cell.nb_ratio == 0.0
