"""Unit tests for the Trace container and TraceLibrary."""

import pytest

from repro.analysis.trace import Trace, TraceLibrary
from repro.hardware.platform import CoreAssignment, INTERVAL_S
from repro.workloads.synthetic import make_cpu_bound


@pytest.fixture
def trace(busy_platform):
    return Trace(busy_platform.run(6), label="t")


class TestTrace:
    def test_needs_samples(self):
        with pytest.raises(ValueError):
            Trace([])

    def test_len_and_iteration(self, trace):
        assert len(trace) == 6
        assert len(list(trace)) == 6

    def test_indexing_and_slicing(self, trace):
        assert trace[0].index == 0
        sliced = trace[2:4]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 2
        assert sliced.label == "t"

    def test_skip_warmup(self, trace):
        trimmed = trace.skip_warmup(2)
        assert len(trimmed) == 4
        assert trimmed[0].index == 2

    def test_skip_warmup_cannot_empty(self, trace):
        with pytest.raises(ValueError):
            trace.skip_warmup(6)

    def test_power_arrays(self, trace):
        measured = trace.measured_power()
        assert measured.shape == (6,)
        assert (measured > 0).all()
        assert trace.average_measured_power() == pytest.approx(measured.mean())

    def test_energy_accounting(self, trace):
        expected = trace.measured_power().sum() * INTERVAL_S
        assert trace.total_measured_energy() == pytest.approx(expected)

    def test_duration(self, trace):
        assert trace.duration() == pytest.approx(6 * INTERVAL_S)

    def test_chip_events_sum_cores(self, trace):
        chip = trace.chip_events(measured=False)
        assert len(chip) == 6
        sample = trace[0]
        total_inst = sum(ev.instructions for ev in sample.true_core_events)
        assert chip[0].instructions == pytest.approx(total_inst)

    def test_core_events_view(self, trace):
        core0 = trace.core_events(0, measured=False)
        assert len(core0) == 6
        assert core0[0].instructions > 0

    def test_cumulative_instructions_monotone(self, trace):
        cum = trace.cumulative_instructions(0)
        assert (cum[1:] >= cum[:-1]).all()
        assert cum[-1] == pytest.approx(trace.total_instructions())


class TestTraceLibrary:
    def test_memoises(self, busy_platform):
        library = TraceLibrary()
        calls = []

        def produce():
            calls.append(1)
            return Trace(busy_platform.run(2))

        a = library.get_or_run("key", produce)
        b = library.get_or_run("key", produce)
        assert a is b
        assert len(calls) == 1
        assert "key" in library
        assert len(library) == 1

    def test_clear(self, busy_platform):
        library = TraceLibrary()
        library.get_or_run("key", lambda: Trace(busy_platform.run(1)))
        library.clear()
        assert "key" not in library
