"""Disk-backed trace cache and parallel collection.

Covers the three perf-infrastructure pieces: key fingerprinting (stable
and collision-free), the disk-backed :class:`TraceLibrary` (round-trip
fidelity, warm restarts simulating nothing), and
:meth:`PPEPTrainer.collect_many` (worker-count-independent results).
"""

import pytest

from repro.analysis.persistence import trace_fingerprint
from repro.analysis.trace import TraceLibrary
from repro.core.ppep import PPEPTrainer
from repro.experiments.common import ExperimentContext
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.platform import Platform
from repro.workloads.suites import spec_combinations


def _quick_trainer(**kwargs):
    return PPEPTrainer(
        FX8320_SPEC, bench_intervals=4, cool_intervals=12, **kwargs
    )


class TestFingerprint:
    def test_stable_across_calls(self):
        key = ("bench", "429", 4, False, 40, 2)
        assert trace_fingerprint(key) == trace_fingerprint(key)

    def test_structurally_close_keys_differ(self):
        # The classic ambiguities a str()-join would collapse.
        assert trace_fingerprint(("ab", "c")) != trace_fingerprint(("a", "bc"))
        assert trace_fingerprint((1,)) != trace_fingerprint((True,))
        assert trace_fingerprint((1,)) != trace_fingerprint(("1",))
        assert trace_fingerprint((1, 2)) != trace_fingerprint(("1, 2",))
        assert trace_fingerprint((None,)) != trace_fingerprint(("n",))
        assert trace_fingerprint((1.0,)) != trace_fingerprint((1,))

    def test_unsupported_type_is_an_error(self):
        with pytest.raises(TypeError):
            trace_fingerprint((object(),))

    def test_all_trainer_keys_unique(self):
        trainer = _quick_trainer()
        keys = set()
        for combo in spec_combinations()[:10]:
            for vf in FX8320_SPEC.vf_table:
                for pg in (False, True):
                    keys.add(
                        trainer._trace_key(
                            "bench", combo.name, vf.index, pg,
                            trainer.BENCH_INTERVALS, trainer.WARMUP,
                        )
                    )
        fingerprints = {trace_fingerprint(k) for k in keys}
        assert len(fingerprints) == len(keys)

    def test_key_pins_engine_and_seed(self):
        a = _quick_trainer(engine="vector")
        b = _quick_trainer(engine="scalar")
        c = _quick_trainer(engine="vector", base_seed=1)
        keys = {t._trace_key("bench", "x", 4, False, 4, 2) for t in (a, b, c)}
        assert len(keys) == 3


class TestDiskLibrary:
    def test_requires_spec(self, tmp_path):
        with pytest.raises(ValueError):
            TraceLibrary(str(tmp_path))

    def test_round_trip_matches_fresh_simulation(self, tmp_path):
        trainer = _quick_trainer()
        combo = spec_combinations()[0]
        vf5 = FX8320_SPEC.vf_table.fastest
        disk = TraceLibrary(str(tmp_path), FX8320_SPEC)
        first = trainer.collect_trace(combo, vf5, disk)
        # A second disk-backed library sees only the files.
        fresh = TraceLibrary(str(tmp_path), FX8320_SPEC)
        loaded = trainer.collect_trace(combo, vf5, fresh)
        assert fresh.disk_hits == 1 and fresh.misses == 0
        for a, b in zip(first.samples, loaded.samples):
            assert a.measured_power == b.measured_power
            assert a.true_power == b.true_power
            assert a.power_samples == b.power_samples
            for va, vb in zip(a.core_events, b.core_events):
                assert va.as_list() == vb.as_list()

    def test_truncated_entry_is_a_miss(self, tmp_path):
        """A half-written archive must not poison the cache forever."""
        import os

        trainer = _quick_trainer()
        combo = spec_combinations()[0]
        vf5 = FX8320_SPEC.vf_table.fastest
        disk = TraceLibrary(str(tmp_path), FX8320_SPEC)
        original = trainer.collect_trace(combo, vf5, disk)
        path = [
            os.path.join(tmp_path, p) for p in os.listdir(tmp_path)
        ][0]
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        fresh = TraceLibrary(str(tmp_path), FX8320_SPEC)
        recovered = trainer.collect_trace(combo, vf5, fresh)
        assert fresh.misses == 1 and fresh.disk_hits == 0
        assert [s.measured_power for s in recovered.samples] == [
            s.measured_power for s in original.samples
        ]
        # The bad entry was evicted and re-written; a third library
        # reads it cleanly from disk.
        third = TraceLibrary(str(tmp_path), FX8320_SPEC)
        trainer.collect_trace(combo, vf5, third)
        assert third.disk_hits == 1

    def test_garbage_entry_is_a_miss(self, tmp_path):
        trainer = _quick_trainer()
        combo = spec_combinations()[0]
        vf5 = FX8320_SPEC.vf_table.fastest
        disk = TraceLibrary(str(tmp_path), FX8320_SPEC)
        key = trainer._trace_key(
            "bench", combo.name, vf5.index, False,
            trainer.BENCH_INTERVALS, trainer.WARMUP,
        )
        with open(disk.path_for(key), "wb") as handle:
            handle.write(b"this is not an npz archive")
        trace = trainer.collect_trace(combo, vf5, disk)
        assert disk.misses == 1 and disk.disk_hits == 0
        assert len(trace.samples) > 0

    def test_wrong_version_entry_is_a_miss(self, tmp_path):
        import numpy as np

        trainer = _quick_trainer()
        combo = spec_combinations()[0]
        vf5 = FX8320_SPEC.vf_table.fastest
        disk = TraceLibrary(str(tmp_path), FX8320_SPEC)
        key = trainer._trace_key(
            "bench", combo.name, vf5.index, False,
            trainer.BENCH_INTERVALS, trainer.WARMUP,
        )
        np.savez_compressed(disk.path_for(key), version=np.array(99))
        trace = trainer.collect_trace(combo, vf5, disk)
        assert disk.misses == 1
        assert len(trace.samples) > 0

    def test_counters_and_contains(self, tmp_path):
        trainer = _quick_trainer()
        combo = spec_combinations()[0]
        vf5 = FX8320_SPEC.vf_table.fastest
        lib = TraceLibrary(str(tmp_path), FX8320_SPEC)
        key = trainer._trace_key(
            "bench", combo.name, vf5.index, False,
            trainer.BENCH_INTERVALS, trainer.WARMUP,
        )
        assert key not in lib
        trainer.collect_trace(combo, vf5, lib)
        assert key in lib and lib.misses == 1
        trainer.collect_trace(combo, vf5, lib)
        assert lib.memory_hits == 1
        lib.clear()
        assert key in lib  # still on disk
        trainer.collect_trace(combo, vf5, lib)
        assert lib.disk_hits == 1


class TestWarmContext:
    def test_second_context_simulates_nothing(self, tmp_path, monkeypatch):
        """The acceptance gate: a warm disk cache means a fresh context
        performs zero new simulations during warm-up."""
        cold = ExperimentContext(scale="quick", cache_dir=str(tmp_path))
        cold_stats = cold.warm_up(max_workers=1)
        assert cold_stats["misses"] > 0

        calls = []
        original = Platform.step
        monkeypatch.setattr(
            Platform, "step", lambda self: calls.append(1) or original(self)
        )
        warm = ExperimentContext(scale="quick", cache_dir=str(tmp_path))
        warm_stats = warm.warm_up(max_workers=1)
        assert calls == []
        assert warm_stats["misses"] == 0
        assert warm_stats["disk_hits"] == cold_stats["misses"]

    def test_env_var_selects_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        ctx = ExperimentContext(scale="quick")
        assert ctx.library.cache_dir == str(tmp_path)


class TestCollectMany:
    def _requests(self, n=3):
        vf5 = FX8320_SPEC.vf_table.fastest
        return [(combo, vf5) for combo in spec_combinations()[:n]]

    def test_parallel_matches_sequential(self):
        trainer = _quick_trainer()
        sequential = trainer.collect_many(
            self._requests(), TraceLibrary(), max_workers=1
        )
        parallel = trainer.collect_many(
            self._requests(), TraceLibrary(), max_workers=2
        )
        for a, b in zip(sequential, parallel):
            assert [s.measured_power for s in a.samples] == [
                s.measured_power for s in b.samples
            ]
            assert [s.true_power for s in a.samples] == [
                s.true_power for s in b.samples
            ]

    def test_fills_library_and_skips_cached(self):
        trainer = _quick_trainer()
        lib = TraceLibrary()
        trainer.collect_many(self._requests(), lib, max_workers=1)
        first_misses = lib.misses
        assert first_misses == 3
        trainer.collect_many(self._requests(), lib, max_workers=2)
        assert lib.misses == first_misses  # everything served from cache

    def test_preserves_request_order(self):
        trainer = _quick_trainer()
        requests = self._requests(4)
        traces = trainer.collect_many(requests, TraceLibrary(), max_workers=2)
        assert [t.label for t in traces] == [c.name for c, _vf in requests]
