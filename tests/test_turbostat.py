"""Turbostat importer: golden fixtures, damage matrix, pipeline e2e.

The golden fixtures in ``tests/data/`` cover the genuine layout
variants (single-socket TSV with summary rows and ``-`` cells,
dual-socket CSV without summary rows, ``-S`` summary-only, a truncated
tail, ``--Joules`` energy columns); each is pinned to its expected
sample count and repair tallies.  The damage matrix then synthesises
reorder / duplicate / gap / corruption variants from the single-socket
fixture, and the end-to-end test drives a bundled recording through
the unchanged filter -> predict -> ledger pipeline.
"""

import os

import pytest

from repro.backends import (
    CapabilityError,
    EndOfTrace,
    TraceFormatError,
    TurbostatReplayBackend,
    nearest_vf,
)
from repro.hardware.microarch import FX8320_SPEC
from repro.hardware.vfstates import FX8320_VF_TABLE

DATA = os.path.join(os.path.dirname(__file__), "data")


def fixture(name):
    return os.path.join(DATA, name)


def single_lines():
    with open(fixture("turbostat_single.tsv")) as handle:
        return handle.read().rstrip("\n").split("\n")


def write_variant(tmp_path, lines, name="variant.tsv"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestGoldenFixtures:
    @pytest.mark.parametrize(
        "name, samples, repairs",
        [
            ("turbostat_single.tsv", 4, {}),
            ("turbostat_dual.csv", 3, {}),
            ("turbostat_summary_only.tsv", 5, {}),
            ("turbostat_torn.tsv", 2, {"torn-tail": 1}),
            ("turbostat_joules.tsv", 4, {"unit": 4}),
        ],
    )
    def test_sample_counts_and_repairs_are_pinned(
        self, name, samples, repairs
    ):
        backend = TurbostatReplayBackend(fixture(name))
        assert len(backend) == samples
        assert backend.repairs == repairs

    def test_single_socket_values(self):
        backend = TurbostatReplayBackend(fixture("turbostat_single.tsv"))
        caps = backend.capabilities()
        assert caps.finite and not caps.can_set_vf
        assert caps.num_cus == FX8320_SPEC.num_cus
        assert caps.num_cores == FX8320_SPEC.num_cores
        # Timestamps jitter by ~10 ms around the 5 s cadence; the
        # derived canonical interval lands within a percent of it.
        assert caps.interval_s == pytest.approx(5.0, rel=0.01)
        # Eight recorded CPUs fill the eight model cores in id order.
        assert backend.cpu_map == {cpu: cpu for cpu in range(8)}
        first = backend.read_interval()
        assert first.measured_power == pytest.approx(41.53)
        assert first.temperature == pytest.approx(54 + 273.15)
        # CPU 0: Avg_MHz 1400 over the interval -> unhalted clocks.
        clocks = 1400e6 * caps.interval_s
        assert first.core_events[0].cycles == pytest.approx(clocks)
        assert first.core_events[0].instructions == pytest.approx(
            1.20 * clocks
        )
        # Bzy_MHz ~3.5 GHz everywhere: every CU buckets to VF5.
        assert [vf.index for vf in first.cu_vfs] == [5, 5, 5, 5]
        assert first.interval_s == caps.interval_s

    def test_single_socket_ground_truth_uses_stand_ins(self):
        backend = TurbostatReplayBackend(fixture("turbostat_single.tsv"))
        first = backend.read_interval()
        assert first.true_power == first.measured_power
        assert first.instructions == [0.0] * FX8320_SPEC.num_cores

    def test_repeated_headers_are_skipped(self):
        # The single fixture has a reprinted header mid-file; its four
        # snapshots must still come through (pinned above), and no row
        # of header text may have leaked into the data.
        backend = TurbostatReplayBackend(fixture("turbostat_single.tsv"))
        while len(backend):
            sample = backend.read_interval()
            assert sample.measured_power > 0

    def test_dual_socket_sums_package_power(self):
        backend = TurbostatReplayBackend(fixture("turbostat_dual.csv"))
        assert backend.meta["delimiter"] == "comma"
        assert backend.meta["packages"] == 2
        first = backend.read_interval()
        # 56.33 W (package 0) + 48.71 W (package 1), no summary row.
        assert first.measured_power == pytest.approx(105.04)
        # Four recorded CPUs cover cores 0-3; CUs 2-3 idle at VF1.
        assert [vf.index for vf in first.cu_vfs] == [5, 5, 1, 1]

    def test_summary_only_maps_to_one_pseudo_core(self):
        backend = TurbostatReplayBackend(
            fixture("turbostat_summary_only.tsv")
        )
        assert backend.meta["summary_only"] is True
        assert backend.cpu_map == {0: 0}
        first = backend.read_interval()
        assert first.core_events[0].cycles == pytest.approx(228e6 * 5.0)
        assert sum(v.cycles for v in first.core_events[1:]) == 0.0

    def test_torn_tail_drops_partial_final_snapshot(self):
        backend = TurbostatReplayBackend(fixture("turbostat_torn.tsv"))
        assert len(backend) == 2
        assert backend.repairs == {"torn-tail": 1}
        assert any("torn" in w for w in backend.warnings)
        indices = [backend.read_interval().index for _ in range(2)]
        assert indices == [0, 1]

    def test_joules_convert_with_one_warning(self):
        backend = TurbostatReplayBackend(fixture("turbostat_joules.tsv"))
        # One repair count per converted snapshot, one warning line.
        assert backend.repairs == {"unit": 4}
        assert len(backend.warnings) == 1
        first = backend.read_interval()
        assert first.measured_power == pytest.approx(207.65 / 5.0)


class TestDamageMatrix:
    def test_gap_between_snapshots_is_tallied(self, tmp_path):
        lines = single_lines()
        # Drop the second snapshot (lines 11..19: summary + 8 CPUs).
        path = write_variant(tmp_path, lines[:10] + lines[19:])
        backend = TurbostatReplayBackend(path)
        assert len(backend) == 3
        assert backend.repairs == {"gap": 1}
        indices = [backend.read_interval().index for _ in range(3)]
        assert indices == [0, 2, 3]

    def test_out_of_order_snapshots_are_resorted(self, tmp_path):
        lines = single_lines()
        header, snap1, snap2 = lines[:1], lines[1:10], lines[10:19]
        rest = lines[19:]
        path = write_variant(tmp_path, header + snap2 + snap1 + rest)
        backend = TurbostatReplayBackend(path)
        assert backend.repairs == {"reorder": 1}
        stamps = []
        while len(backend):
            stamps.append(backend.read_interval().index)
        assert stamps == sorted(stamps)

    def test_duplicate_snapshot_keeps_first(self, tmp_path):
        lines = single_lines()
        snap1 = lines[1:10]
        path = write_variant(tmp_path, lines[:10] + snap1 + lines[10:])
        backend = TurbostatReplayBackend(path)
        assert len(backend) == 4
        assert backend.repairs == {"duplicate": 1}

    def test_mid_file_corruption_is_fatal_with_location(self, tmp_path):
        lines = single_lines()
        lines[5] = lines[5].replace("3460", "bogus", 1)
        path = write_variant(tmp_path, lines)
        with pytest.raises(TraceFormatError, match=r":6: unparseable"):
            TurbostatReplayBackend(path)

    def test_ragged_mid_file_row_is_fatal(self, tmp_path):
        lines = single_lines()
        lines[7] = "\t".join(lines[7].split("\t")[:-2])
        path = write_variant(tmp_path, lines)
        with pytest.raises(TraceFormatError, match=r":8: expected 12"):
            TurbostatReplayBackend(path)

    def test_ragged_final_row_is_a_torn_tail(self, tmp_path):
        lines = single_lines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path = write_variant(tmp_path, lines)
        backend = TurbostatReplayBackend(path)
        assert len(backend) == 3
        assert backend.repairs == {"torn-tail": 1}

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty file"):
            TurbostatReplayBackend(str(path))

    def test_header_only_recording_is_rejected(self, tmp_path):
        path = write_variant(tmp_path, single_lines()[:1])
        with pytest.raises(TraceFormatError, match="no complete interval"):
            TurbostatReplayBackend(path)

    def test_missing_power_column_is_rejected(self, tmp_path):
        lines = [
            "Core\tCPU\tAvg_MHz\tBusy%\tBzy_MHz",
            "0\t0\t1400\t40.00\t3500",
        ]
        path = write_variant(tmp_path, lines)
        with pytest.raises(TraceFormatError, match="no package power"):
            TurbostatReplayBackend(path)

    def test_missing_frequency_column_is_rejected(self, tmp_path):
        lines = ["Core\tCPU\tPkgWatt", "0\t0\t41.0"]
        path = write_variant(tmp_path, lines)
        with pytest.raises(TraceFormatError, match="not a turbostat layout"):
            TurbostatReplayBackend(path)

    def test_duplicate_columns_are_rejected(self, tmp_path):
        lines = [
            "Core\tCPU\tAvg_MHz\tAvg_MHz\tPkgWatt",
            "0\t0\t1400\t1400\t41.0",
        ]
        path = write_variant(tmp_path, lines)
        with pytest.raises(TraceFormatError, match="duplicate column"):
            TurbostatReplayBackend(path)

    def test_missing_power_cells_flow_through_as_zero(self, tmp_path):
        # A snapshot with no power anywhere is value-level damage: it is
        # delivered (0 W) for the downstream filter to judge, same as a
        # stuck counter in a canonical trace.
        lines = single_lines()
        for i in (10, 11):
            cells = lines[i].split("\t")
            cells[10] = "-"
            lines[i] = "\t".join(cells)
        path = write_variant(tmp_path, lines)
        backend = TurbostatReplayBackend(path)
        powers = [backend.read_interval().measured_power for _ in range(4)]
        assert powers[0] == pytest.approx(41.53)
        assert powers[1] == 0.0


class TestGeometryMapping:
    def test_nearest_vf_buckets_real_pstates(self):
        assert nearest_vf(FX8320_VF_TABLE, 3.45).index == 5
        assert nearest_vf(FX8320_VF_TABLE, 1.45).index == 1
        assert nearest_vf(FX8320_VF_TABLE, 2.55).index == 3

    def test_wider_recording_folds_onto_model_cores(self, tmp_path):
        # Sixteen CPUs onto eight cores: ids fold modulo the core count
        # and folded counters aggregate.
        header = "Core\tCPU\tAvg_MHz\tBusy%\tBzy_MHz\tPkgWatt"
        rows = []
        for snap in range(2):
            for cpu in range(16):
                rows.append(
                    "{}\t{}\t100\t3.00\t3500\t{}".format(
                        cpu // 2, cpu, "40.0" if cpu == 0 else "-"
                    )
                )
        path = write_variant(tmp_path, [header] + rows)
        backend = TurbostatReplayBackend(path)
        assert len(backend) == 2
        assert backend.cpu_map[8] == 0 and backend.cpu_map[15] == 7
        first = backend.read_interval()
        # Two folded CPUs at 100 MHz each over the default 5 s interval.
        assert first.core_events[0].cycles == pytest.approx(2 * 100e6 * 5.0)

    def test_explicit_interval_used_without_timestamps(self, tmp_path):
        header = "Core\tCPU\tAvg_MHz\tBusy%\tBzy_MHz\tPkgWatt"
        rows = ["0\t0\t1000\t30.00\t3500\t40.0"] * 3
        path = write_variant(tmp_path, [header] + rows)
        backend = TurbostatReplayBackend(path, interval_s=1.0)
        assert backend.capabilities().interval_s == pytest.approx(1.0)
        first = backend.read_interval()
        assert first.core_events[0].cycles == pytest.approx(1000e6 * 1.0)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            TurbostatReplayBackend(
                fixture("turbostat_single.tsv"), interval_s=0.0
            )


class TestPipelineEndToEnd:
    def test_import_feeds_filter_predict_ledger(self, quick_ctx):
        from repro.experiments import turbostat_import

        result = turbostat_import.run(
            quick_ctx, fixture("turbostat_single.tsv")
        )
        assert result.nonempty
        assert result.intervals == 4
        assert result.repairs == {}
        assert result.quality.get("good", 0) + result.quality.get(
            "repaired", 0
        ) + result.quality.get("bad", 0) == 4
        # The recording runs near VF5 throughout: the per-VF report has
        # a VF5 row with a finite, positive MAE.
        assert 5 in result.per_vf_mae_w
        assert result.per_vf_mae_w[5] > 0.0
        report = turbostat_import.format_report(result, quick_ctx)
        assert "VF5" in report
        assert "model-input starvation" in report

    def test_torn_recording_still_reports(self, quick_ctx):
        from repro.experiments import turbostat_import

        result = turbostat_import.run(
            quick_ctx, fixture("turbostat_torn.tsv")
        )
        assert result.nonempty
        assert result.repairs == {"torn-tail": 1}

    def test_end_of_trace_and_recorded_noops(self):
        backend = TurbostatReplayBackend(fixture("turbostat_single.tsv"))
        while len(backend):
            backend.read_interval()
        with pytest.raises(EndOfTrace):
            backend.read_interval()
        slow = FX8320_SPEC.vf_table.slowest
        backend.set_vf(0, slow)
        assert backend.requested_vfs == [(0, slow)]
        with pytest.raises(CapabilityError):
            backend.set_power_gating(True)
