"""Unit tests for VF states and tables."""

import pytest

from repro.hardware.vfstates import (
    FX8320_VF_TABLE,
    NB_VF_HI,
    NB_VF_LO,
    PHENOM_II_VF_TABLE,
    VFState,
    VFTable,
)


class TestVFState:
    def test_paper_values_fx8320(self):
        vf5 = FX8320_VF_TABLE.by_index(5)
        assert vf5.voltage == pytest.approx(1.320)
        assert vf5.frequency_ghz == pytest.approx(3.5)
        vf1 = FX8320_VF_TABLE.by_index(1)
        assert vf1.voltage == pytest.approx(0.888)
        assert vf1.frequency_ghz == pytest.approx(1.4)

    def test_default_name(self):
        assert VFState(3, 1.1, 2.0).name == "VF3"

    def test_frequency_hz(self):
        assert VFState(1, 1.0, 2.0).frequency_hz == pytest.approx(2.0e9)

    def test_rejects_zero_index(self):
        with pytest.raises(ValueError):
            VFState(0, 1.0, 1.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ValueError):
            VFState(1, 0.0, 1.0)

    def test_ordering_follows_index(self):
        assert FX8320_VF_TABLE.by_index(1) < FX8320_VF_TABLE.by_index(5)

    def test_nb_states_match_paper(self):
        assert NB_VF_HI.voltage == pytest.approx(1.175)
        assert NB_VF_HI.frequency_ghz == pytest.approx(2.2)
        assert NB_VF_LO.voltage == pytest.approx(0.940)
        assert NB_VF_LO.frequency_ghz == pytest.approx(1.1)


class TestVFTable:
    def test_fx8320_has_five_states(self):
        assert len(FX8320_VF_TABLE) == 5

    def test_phenom_has_four_states(self):
        assert len(PHENOM_II_VF_TABLE) == 4

    def test_iteration_is_fastest_first(self):
        indices = [s.index for s in FX8320_VF_TABLE]
        assert indices == [5, 4, 3, 2, 1]

    def test_ascending_is_slowest_first(self):
        indices = [s.index for s in FX8320_VF_TABLE.ascending()]
        assert indices == [1, 2, 3, 4, 5]

    def test_fastest_and_slowest(self):
        assert FX8320_VF_TABLE.fastest.index == 5
        assert FX8320_VF_TABLE.slowest.index == 1

    def test_by_index_unknown_raises(self):
        with pytest.raises(KeyError):
            FX8320_VF_TABLE.by_index(9)

    def test_step_down(self):
        vf3 = FX8320_VF_TABLE.by_index(3)
        assert FX8320_VF_TABLE.step_down(vf3).index == 2

    def test_step_down_saturates_at_floor(self):
        vf1 = FX8320_VF_TABLE.slowest
        assert FX8320_VF_TABLE.step_down(vf1) is vf1

    def test_step_up(self):
        vf3 = FX8320_VF_TABLE.by_index(3)
        assert FX8320_VF_TABLE.step_up(vf3).index == 4

    def test_step_up_saturates_at_ceiling(self):
        vf5 = FX8320_VF_TABLE.fastest
        assert FX8320_VF_TABLE.step_up(vf5) is vf5

    def test_step_rejects_foreign_state(self):
        foreign = VFState(3, 1.0, 1.0)
        with pytest.raises(KeyError):
            FX8320_VF_TABLE.step_down(foreign)

    def test_requires_contiguous_indices(self):
        with pytest.raises(ValueError):
            VFTable([VFState(1, 0.9, 1.0), VFState(3, 1.1, 2.0)])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            VFTable([])

    def test_contains(self):
        assert FX8320_VF_TABLE.fastest in FX8320_VF_TABLE
        assert VFState(9, 1.0, 1.0) not in FX8320_VF_TABLE

    def test_voltage_monotone_with_frequency(self):
        states = FX8320_VF_TABLE.ascending()
        for slow, fast in zip(states, states[1:]):
            assert fast.voltage > slow.voltage
            assert fast.frequency_ghz > slow.frequency_ghz
